#!/bin/sh
# benchdiff.sh <old.json> <new.json> — print old-vs-new ns/op deltas for
# the Table 3 engine-comparison rows of two bench.sh reports. CI runs it
# with the committed report as "old" and the fresh run as "new" and
# uploads the output as a job artifact, so every PR shows what it did to
# the engine matchups. A seed/ prefix on a row name (the hand-carried
# reference rows) is ignored when pairing rows, so the recorded seed
# baseline diffs against the freshly measured row of the same name.
# Rows present in only one report print "n/a" instead of failing: old
# reports predate rows that newer benchmarks add.
set -eu
if [ $# -ne 2 ]; then
	echo "usage: benchdiff.sh <old.json> <new.json>" >&2
	exit 2
fi
old="$1"
new="$2"
for f in "$old" "$new"; do
	if [ ! -f "$f" ]; then
		echo "benchdiff: $f not found" >&2
		exit 1
	fi
done

# Emit "name ns" per Table 3 row, seed/ prefix stripped. Seed reference
# rows come first so a measured row of the same name wins (the awk below
# keeps the last value seen): a report that carries both the seed row
# and a fresh measurement diffs with the measurement.
rows() {
	sed -n 's/.*"name": *"\([^"]*Table3Engines[^"]*\)".*"ns_per_op": *\([0-9][0-9]*\).*/\1 \2/p' "$1" >/tmp/benchdiff.$$
	grep '^seed/' /tmp/benchdiff.$$ | sed 's/^seed\///' || true
	grep -v '^seed/' /tmp/benchdiff.$$ || true
	rm -f /tmp/benchdiff.$$
}

{
	rows "$old" | sed 's/^/old /'
	rows "$new" | sed 's/^/new /'
} | awk '
	$1 == "old" { oldns[$2] = $3; names[$2] = 1 }
	$1 == "new" { newns[$2] = $3; names[$2] = 1 }
	END {
		printf "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
		found = 0
		for (n in names) order[++found] = n
		# Stable order: sort names lexically (portable insertion sort;
		# asort is a gawk extension).
		for (i = 2; i <= found; i++) {
			v = order[i]
			for (j = i - 1; j >= 1 && order[j] > v; j--) order[j + 1] = order[j]
			order[j + 1] = v
		}
		for (i = 1; i <= found; i++) {
			n = order[i]
			o = (n in oldns) ? oldns[n] : ""
			w = (n in newns) ? newns[n] : ""
			if (o != "" && w != "")
				printf "%-55s %14d %14d %8.1f%%\n", n, o, w, (w - o) * 100.0 / o
			else
				printf "%-55s %14s %14s %9s\n", n, (o == "" ? "n/a" : o), (w == "" ? "n/a" : w), "n/a"
		}
		if (found == 0) {
			print "benchdiff: no Table 3 rows in either report" > "/dev/stderr"
			exit 1
		}
	}
'
