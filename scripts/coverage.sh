#!/bin/sh
# coverage.sh — measure statement coverage of the engine core and gate
# it. The floor applies to the combined profile over internal/vm,
# internal/core, and internal/codegen (the packages whose regressions
# are silent without it: the memo table, arenas, incremental reuse pass,
# limits, module composition, and the offline code generator's emit
# paths), exercised by the full test suite. Writes the profile to
# coverage.out (or the path in $1) so CI can upload it as an artifact.
set -eu
cd "$(dirname "$0")/.."
out="${1:-coverage.out}"
floor="${COVERAGE_FLOOR:-75}"

go test -count=1 -coverprofile="$out" -coverpkg=modpeg/internal/vm,modpeg/internal/core,modpeg/internal/codegen ./... >/dev/null

total=$(go tool cover -func="$out" | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
if [ -z "$total" ]; then
	echo "coverage: could not read total from $out" >&2
	exit 1
fi
echo "coverage: internal/vm + internal/core + internal/codegen total = ${total}% (floor ${floor}%)"
if [ "$(printf '%s %s\n' "$total" "$floor" | awk '{ print ($1 < $2) ? 1 : 0 }')" -eq 1 ]; then
	echo "coverage: ${total}% is below the ${floor}% floor" >&2
	exit 1
fi
