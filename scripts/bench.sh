#!/bin/sh
# bench.sh — run the Table 5 session-residency benchmarks and record the
# results as JSON (BENCH_1.json by default; pass a path to override).
# Each record maps a benchmark name to ns/op, B/op, and allocs/op.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_1.json}"

go test -run '^$' -bench 'BenchmarkTable5' -benchmem -benchtime 20x . |
	tee /dev/stderr |
	awk '
		/^Benchmark/ {
			name = $1
			ns = ""; bop = ""; aop = ""
			for (i = 2; i <= NF; i++) {
				if ($(i) == "ns/op") ns = $(i - 1)
				if ($(i) == "B/op") bop = $(i - 1)
				if ($(i) == "allocs/op") aop = $(i - 1)
			}
			if (ns != "") {
				rows[++n] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop)
			}
		}
		END {
			# Pre-session-layer reference: the seed tree measured
			# BenchmarkTable3Engines/java/optimized (cold Program.Parse on
			# the same 40 KB java.core workload) at these numbers. Kept in
			# the output so the steady-state improvement is self-contained.
			rows[++n] = "  {\"name\": \"seed/BenchmarkTable3Engines/size=40KB/optimized\", \"ns_per_op\": 29625281, \"bytes_per_op\": 9188320, \"allocs_per_op\": 144713}"
			print "["
			for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
			print "]"
		}
	' >"$out"

echo "wrote $out" >&2
