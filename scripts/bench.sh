#!/bin/sh
# bench.sh — run the Table 3 engine-comparison (40 KB java corpus),
# Table 5 session-residency, Table 6 observability, Table 7
# resource-governance, Table 8 incremental-reparse, and Table 9
# telemetry-overhead benchmarks and record the results as JSON
# (BENCH_9.json by default; pass a path to override). Each record maps
# a benchmark name to ns/op, B/op, and allocs/op. The Table 3 rows pit
# backtracking, naive packrat, the optimized byte-level engine, and the
# profile-guided-inlining engine against each other on the same 40 KB
# java corpus; the derived java-40KB-ns-per-byte row (optimized ns/op
# divided by the 40960-byte input) is the hot-path ratchet that
# scripts/bench_check.sh gates. The Table3Compiled rows time the
# optimized interpreter and the closure-compiled engine inside the same
# benchmark iteration and report their ratio as a "speedup" metric; the
# derived compiled-speedup-x1000 (valued 64 KB java, Amdahl-bound by
# the AST construction both engines share) and
# compiled-void-speedup-x1000 (void grammar, engine machinery only)
# rows are ratcheted by bench_check.sh. The Table 6 rows measure profiler
# overhead: the "disabled" row must stay within 2% of BENCH_1.json's
# java/pooled row (same workload, instrumentation seam added). The
# Table 7 rows compare ungoverned parsing against zero-limits and
# all-budgets governed parsing; the VoidSteadyState rows (one per
# engine) are the allocation canary (allocs_per_op must be exactly 0 on
# every one). The Table 8 rows
# pair a from-scratch reparse of an edited input with the incremental
# Document.Apply of the same edit; the derived incremental-speedup row
# (64 KB java.core, one-line edit) must stay at or above 5000 (= 5x,
# scaled by 1000). The Table 9 rows compare a registry-disabled parse
# against the default metrics+histograms path (derived
# telemetry-overhead row should hover near 1000 = no overhead) and the
# Chrome trace-export hook. The Table6SamplingOverhead row measures
# always-on 1-in-100 sampled profiling (amortized from the fully
# sampled path); its derived sampling-overhead-x1000 row is ratcheted
# at <= 1020 (2%) by bench_check.sh, and the Table 5 sampling-off row
# extends the zero-allocation canary to the pooled traced entry point.
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_9.json}"

{
	go test -run '^$' -bench 'BenchmarkTable3Compiled|BenchmarkTable5|BenchmarkTable6|BenchmarkTable7|BenchmarkTable8|BenchmarkTable9' -benchmem -benchtime 20x .
	go test -run '^$' -bench 'BenchmarkTable3Engines/size=40KB' -benchmem -benchtime 20x .
} |
	tee /dev/stderr |
	awk '
		/^Benchmark/ {
			name = $1
			# Canonical names: drop the -GOMAXPROCS suffix Go appends on
			# multi-core runners so reports diff cleanly across machines.
			sub(/-[0-9]+$/, "", name)
			ns = ""; bop = ""; aop = ""; sp = ""; ov = ""
			for (i = 2; i <= NF; i++) {
				if ($(i) == "ns/op") ns = $(i - 1)
				if ($(i) == "B/op") bop = $(i - 1)
				if ($(i) == "allocs/op") aop = $(i - 1)
				if ($(i) == "speedup") sp = $(i - 1)
				if ($(i) == "overhead") ov = $(i - 1)
			}
			if (sp != "") {
				if (name ~ /Table3Compiled\/java-64KB/) javaspeed = sp
				if (name ~ /Table3Compiled\/void-64KB/) voidspeed = sp
			}
			if (ov != "" && name ~ /Table6SamplingOverhead/) sampover = ov
			if (ns != "") {
				rows[++n] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bop, aop)
				if (name ~ /Table6Observability\/disabled/) disabled = ns
				if (name ~ /Table6Observability\/profiled/) profiled = ns
				if (name ~ /Table7Governance\/ungoverned/) ungoverned = ns
				if (name ~ /Table7Governance\/zero-limits/) zerolimits = ns
				if (name ~ /Table8Incremental\/64KB\/line\/full/) incfull = ns
				if (name ~ /Table8Incremental\/64KB\/line\/incremental/) increparse = ns
				if (name ~ /Table9Telemetry\/bare/) telbare = ns
				if (name ~ /Table9Telemetry\/metrics/) telmetrics = ns
				if (name ~ /Table9Telemetry\/traced/) teltraced = ns
				if (name ~ /Table3Engines\/size=40KB\/optimized$/) javaopt = ns
			}
		}
		END {
			# Pre-session-layer reference: the seed tree measured
			# BenchmarkTable3Engines/java/optimized (cold Program.Parse on
			# the same 40 KB java.core workload) at these numbers. Kept in
			# the output so the steady-state improvement is self-contained.
			rows[++n] = "  {\"name\": \"seed/BenchmarkTable3Engines/size=40KB/optimized\", \"ns_per_op\": 29625281, \"bytes_per_op\": 9188320, \"allocs_per_op\": 144713}"
			# Derived rows: time ratios scaled by 1000 to fit the integer
			# ns_per_op field (1730 = 1.73x overhead; 12000 = 12x speedup).
			if (disabled != "" && profiled != "")
				rows[++n] = sprintf("  {\"name\": \"derived/profiler-overhead-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", (profiled / disabled) * 1000)
			if (ungoverned != "" && zerolimits != "")
				rows[++n] = sprintf("  {\"name\": \"derived/governance-overhead-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", (zerolimits / ungoverned) * 1000)
			if (incfull != "" && increparse != "")
				rows[++n] = sprintf("  {\"name\": \"derived/incremental-speedup-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", (incfull / increparse) * 1000)
			if (telbare != "" && telmetrics != "")
				rows[++n] = sprintf("  {\"name\": \"derived/telemetry-overhead-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", (telmetrics / telbare) * 1000)
			if (telbare != "" && teltraced != "")
				rows[++n] = sprintf("  {\"name\": \"derived/trace-export-overhead-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", (teltraced / telbare) * 1000)
			# Compiled-engine speedups from the paired Table3Compiled rows
			# (ratio already computed inside the benchmark, so scheduler
			# noise cancels). The valued java row is end-to-end and
			# Amdahl-bound by shared AST construction; the void row is the
			# engine-only ratio that carries the >= 2x acceptance gate.
			if (javaspeed != "")
				rows[++n] = sprintf("  {\"name\": \"derived/compiled-speedup-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", javaspeed * 1000)
			if (voidspeed != "")
				rows[++n] = sprintf("  {\"name\": \"derived/compiled-void-speedup-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", voidspeed * 1000)
			# Hot-path ratchet: optimized-engine ns per input byte on the
			# 40 KB (40960-byte) java corpus. The seed reference row above
			# works out to 723 ns/byte; bench_check.sh gates this row.
			if (javaopt != "")
				rows[++n] = sprintf("  {\"name\": \"derived/java-40KB-ns-per-byte\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", javaopt / 40960)
			# Always-on sampled-profiling overhead at the 1-in-100 duty
			# cycle, amortized from the fully sampled path (see
			# BenchmarkTable6SamplingOverhead). bench_check.sh ratchets
			# this at <= 1020 (2%% end-to-end on the 64 KB java corpus).
			if (sampover != "")
				rows[++n] = sprintf("  {\"name\": \"derived/sampling-overhead-x1000\", \"ns_per_op\": %.0f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", sampover * 1000)
			print "["
			for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
			print "]"
		}
	' >"$out"

echo "wrote $out" >&2
