#!/bin/sh
# capacity_smoke.sh — CI capacity gate: run `modpeg loadtest` for 5s of
# closed-loop mixed-grammar traffic (adversarial items included)
# against a spawned in-process server, write the LOADTEST.json
# artifact, and fail on regression floors. The floors are deliberately
# loose — they catch collapse (an order of magnitude), not noise:
# shared CI runners are slow and loadtest numbers vary run to run.
set -eu
cd "$(dirname "$0")/.."

out="${1:-LOADTEST.json}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/modpeg"
go build -o "$bin" ./cmd/modpeg

"$bin" loadtest -duration 5s -workers 8 -warmup 500ms \
	-slo-p99 0s -slo-errors 0.01 \
	-min-rps 10 -max-p99 10s -json "$out"

# The artifact must carry the fields the report promises: quantiles,
# outcome breakdown, and the server-side telemetry correlation.
for key in '"p99_ns"' '"p999_ns"' '"achieved_rps"' '"outcomes"' \
	'"server"' '"goroutines"' '"heap_bytes"'; do
	if ! grep -q "$key" "$out"; then
		echo "capacity_smoke: $out missing $key" >&2
		exit 1
	fi
done

echo "capacity_smoke: OK"
