#!/bin/sh
# bench_check.sh — regression gate over a bench.sh JSON report
# (BENCH_6.json by default; pass a path to override). Three checks:
#
#   1. Every derived row bench.sh is supposed to compute must be
#      present. A missing row means the producing benchmark silently
#      vanished (renamed, filtered out, crashed) — that must be a loud
#      failure, not a gate that trivially passes on an empty report.
#   2. The governed zero-allocation guarantee: the Table 5 void-grammar
#      steady state must report exactly 0 allocs/op, or the slab-arena /
#      session-reuse / governance-arming discipline has regressed.
#   3. The byte-level hot-path ratchet: derived/java-40KB-ns-per-byte
#      (optimized engine, 40 KB java corpus) must stay at or below
#      450 ns/byte. The seed engine measured 723 ns/byte; the scan-
#      fusion + choice-table + PGO engine measures ~300 on an idle
#      machine, so 450 locks in the win while tolerating noisy CI.
#
# Plain grep/sed so the gate runs anywhere a POSIX shell does.
set -eu
report="${1:-BENCH_6.json}"
max_ns_per_byte=450

if [ ! -f "$report" ]; then
	echo "bench_check: report $report not found (run scripts/bench.sh first)" >&2
	exit 1
fi

# ns_per_op of the single row whose name contains $1 (fixed string).
row_ns() {
	grep -F "\"$1\"" "$report" | sed -n 's/.*"ns_per_op": *\([0-9][0-9]*\).*/\1/p' | head -n 1
}

fail=0

# 1. Expected derived rows. Keep in sync with the END block of bench.sh.
for name in \
	derived/profiler-overhead-x1000 \
	derived/governance-overhead-x1000 \
	derived/incremental-speedup-x1000 \
	derived/telemetry-overhead-x1000 \
	derived/trace-export-overhead-x1000 \
	derived/java-40KB-ns-per-byte; do
	if [ -z "$(row_ns "$name")" ]; then
		echo "bench_check: FAIL: expected derived row \"$name\" is missing from $report" >&2
		echo "bench_check:       (its source benchmark was renamed, filtered out, or did not run)" >&2
		fail=1
	fi
done

# 2. Zero-allocation canary.
row=$(grep 'Table5VoidSteadyState' "$report" || true)
if [ -z "$row" ]; then
	echo "bench_check: FAIL: no Table5VoidSteadyState row in $report" >&2
	fail=1
else
	allocs=$(printf '%s\n' "$row" | sed -n 's/.*"allocs_per_op": *\([0-9][0-9]*\).*/\1/p')
	if [ -z "$allocs" ]; then
		echo "bench_check: FAIL: could not read allocs_per_op from row: $row" >&2
		fail=1
	elif [ "$allocs" -ne 0 ]; then
		echo "bench_check: FAIL: void-grammar steady state allocates ($allocs allocs/op, want 0)" >&2
		echo "bench_check:       row: $row" >&2
		fail=1
	fi
fi

# 3. Hot-path ratchet.
nspb=$(row_ns derived/java-40KB-ns-per-byte)
if [ -n "$nspb" ] && [ "$nspb" -gt "$max_ns_per_byte" ]; then
	echo "bench_check: FAIL: java-40KB hot path at $nspb ns/byte, ratchet is $max_ns_per_byte (seed: 723)" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "bench_check: OK (derived rows present, void canary 0 allocs/op, java hot path ${nspb} ns/byte <= ${max_ns_per_byte})"
