#!/bin/sh
# bench_check.sh — regression gate over a bench.sh JSON report
# (BENCH_5.json by default; pass a path to override). The governed
# zero-allocation guarantee is the one benchmark result that is a hard
# invariant rather than a trend: the Table 5 void-grammar steady state
# must report exactly 0 allocs/op, or the slab-arena / session-reuse /
# governance-arming discipline has regressed. Plain grep/sed so the
# gate runs anywhere a POSIX shell does.
set -eu
report="${1:-BENCH_5.json}"

if [ ! -f "$report" ]; then
	echo "bench_check: report $report not found (run scripts/bench.sh first)" >&2
	exit 1
fi

row=$(grep 'Table5VoidSteadyState' "$report" || true)
if [ -z "$row" ]; then
	echo "bench_check: no Table5VoidSteadyState row in $report" >&2
	exit 1
fi

allocs=$(printf '%s\n' "$row" | sed -n 's/.*"allocs_per_op": *\([0-9][0-9]*\).*/\1/p')
if [ -z "$allocs" ]; then
	echo "bench_check: could not read allocs_per_op from row: $row" >&2
	exit 1
fi
if [ "$allocs" -ne 0 ]; then
	echo "bench_check: void-grammar steady state allocates ($allocs allocs/op, want 0)" >&2
	echo "bench_check: row: $row" >&2
	exit 1
fi
echo "bench_check: OK (void-grammar steady state at 0 allocs/op)"
