#!/bin/sh
# bench_check.sh — regression gate over a bench.sh JSON report
# (BENCH_9.json by default; pass a path to override). Four checks:
#
#   1. Every derived row bench.sh is supposed to compute must be
#      present. A missing row means the producing benchmark silently
#      vanished (renamed, filtered out, crashed) — that must be a loud
#      failure, not a gate that trivially passes on an empty report.
#   2. The governed zero-allocation guarantee: every Table 5
#      void-grammar steady-state row (one per engine: the optimized
#      interpreter and the closure-compiled engine) must report exactly
#      0 allocs/op, or the slab-arena / session-reuse /
#      governance-arming discipline has regressed on that engine.
#   3. The byte-level hot-path ratchet: derived/java-40KB-ns-per-byte
#      (optimized engine, 40 KB java corpus) must stay at or below
#      450 ns/byte. The seed engine measured 723 ns/byte; the scan-
#      fusion + choice-table + PGO engine measures ~300 on an idle
#      machine, so 450 locks in the win while tolerating noisy CI.
#   4. The compiled-engine speedup ratchets (minimums, scaled x1000):
#      derived/compiled-void-speedup-x1000 >= 2000 — the closure tree
#      must stay at least 2x faster than the interpreter on pure parser
#      machinery (measured ~3000); and derived/compiled-speedup-x1000
#      >= 1250 on the valued 64 KB java corpus, whose end-to-end ratio
#      is Amdahl-bound by the AST construction both engines share
#      (measured ~1400-1650 depending on machine load). Both ratios
#      come from paired same-iteration timing, so they are stable where
#      absolute ns/op is not.
#   5. The always-on sampled-profiling gates: the Table 5
#      sampling-off row (the serve layer's pooled traced entry point
#      with sampling disabled) must exist and report exactly 0
#      allocs/op — the sampler may not cost anything when off — and
#      derived/sampling-overhead-x1000 must stay at or below 1020:
#      1-in-100 sampling adds at most 2% to the end-to-end 64 KB java
#      parse (measured ~1009; the ratio is amortized from paired
#      same-iteration timing, see BenchmarkTable6SamplingOverhead).
#
# Plain grep/sed so the gate runs anywhere a POSIX shell does.
set -eu
report="${1:-BENCH_9.json}"
max_ns_per_byte=450
min_compiled_speedup=1250
min_compiled_void_speedup=2000
max_sampling_overhead=1020

if [ ! -f "$report" ]; then
	echo "bench_check: report $report not found (run scripts/bench.sh first)" >&2
	exit 1
fi

# ns_per_op of the single row whose name contains $1 (fixed string).
row_ns() {
	grep -F "\"$1\"" "$report" | sed -n 's/.*"ns_per_op": *\([0-9][0-9]*\).*/\1/p' | head -n 1
}

fail=0

# 1. Expected derived rows. Keep in sync with the END block of bench.sh.
for name in \
	derived/profiler-overhead-x1000 \
	derived/governance-overhead-x1000 \
	derived/incremental-speedup-x1000 \
	derived/telemetry-overhead-x1000 \
	derived/trace-export-overhead-x1000 \
	derived/compiled-speedup-x1000 \
	derived/compiled-void-speedup-x1000 \
	derived/java-40KB-ns-per-byte \
	derived/sampling-overhead-x1000; do
	if [ -z "$(row_ns "$name")" ]; then
		echo "bench_check: FAIL: expected derived row \"$name\" is missing from $report" >&2
		echo "bench_check:       (its source benchmark was renamed, filtered out, or did not run)" >&2
		fail=1
	fi
done

# 2. Zero-allocation canary — every engine's row must be exactly 0.
rows=$(grep 'Table5VoidSteadyState' "$report" || true)
if [ -z "$rows" ]; then
	echo "bench_check: FAIL: no Table5VoidSteadyState row in $report" >&2
	fail=1
else
	while IFS= read -r row; do
		allocs=$(printf '%s\n' "$row" | sed -n 's/.*"allocs_per_op": *\([0-9][0-9]*\).*/\1/p')
		if [ -z "$allocs" ]; then
			echo "bench_check: FAIL: could not read allocs_per_op from row: $row" >&2
			fail=1
		elif [ "$allocs" -ne 0 ]; then
			echo "bench_check: FAIL: void-grammar steady state allocates ($allocs allocs/op, want 0)" >&2
			echo "bench_check:       row: $row" >&2
			fail=1
		fi
	done <<EOF
$rows
EOF
	# The sampled-off canary must be among those rows: the pooled traced
	# entry point with sampling disabled is the serve layer's default hot
	# path, and its 0 allocs/op is the "always-on profiling costs nothing
	# when off" guarantee.
	if ! printf '%s\n' "$rows" | grep -q 'Table5VoidSteadyState/sampling-off'; then
		echo "bench_check: FAIL: no Table5VoidSteadyState/sampling-off row in $report" >&2
		echo "bench_check:       (the sampled-off void canary was renamed, filtered out, or did not run)" >&2
		fail=1
	fi
fi

# 3. Hot-path ratchet.
nspb=$(row_ns derived/java-40KB-ns-per-byte)
if [ -n "$nspb" ] && [ "$nspb" -gt "$max_ns_per_byte" ]; then
	echo "bench_check: FAIL: java-40KB hot path at $nspb ns/byte, ratchet is $max_ns_per_byte (seed: 723)" >&2
	fail=1
fi

# 4. Compiled-engine speedup ratchets (these are floors, not ceilings).
cspeed=$(row_ns derived/compiled-speedup-x1000)
if [ -n "$cspeed" ] && [ "$cspeed" -lt "$min_compiled_speedup" ]; then
	echo "bench_check: FAIL: compiled engine at ${cspeed}/1000 x over the interpreter on valued 64KB java, floor is ${min_compiled_speedup}" >&2
	fail=1
fi
vspeed=$(row_ns derived/compiled-void-speedup-x1000)
if [ -n "$vspeed" ] && [ "$vspeed" -lt "$min_compiled_void_speedup" ]; then
	echo "bench_check: FAIL: compiled engine at ${vspeed}/1000 x over the interpreter on the void grammar, floor is ${min_compiled_void_speedup} (= the 2x acceptance gate)" >&2
	fail=1
fi

# 5. Sampling-overhead ratchet (a ceiling: 1020 = 2% end-to-end).
sover=$(row_ns derived/sampling-overhead-x1000)
if [ -n "$sover" ] && [ "$sover" -gt "$max_sampling_overhead" ]; then
	echo "bench_check: FAIL: 1-in-100 sampled profiling at ${sover}/1000 x over the unsampled parse, ceiling is ${max_sampling_overhead} (= the 2% acceptance gate)" >&2
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "bench_check: OK (derived rows present, void canary 0 allocs/op on every engine incl. sampling-off, java hot path ${nspb} ns/byte <= ${max_ns_per_byte}, compiled speedups ${cspeed}/${vspeed} x1000 >= ${min_compiled_speedup}/${min_compiled_void_speedup}, sampling overhead ${sover} x1000 <= ${max_sampling_overhead})"
