#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of `modpeg serve`: build the
# binary, start the service, hit /healthz, /readyz, POST /parse (both a
# success and a syntax rejection), and /metrics, exercise the grammar
# registry lifecycle over real HTTP (upload a base grammar, extend it
# with a modification module, hot-swap a new version, pin the old one,
# reject a smoke-failing upload, roll back), then send SIGTERM and
# require a clean graceful-shutdown exit. Plain sh + curl + jq so it
# runs in CI and locally alike.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
bin="$tmp/modpeg"
addr="127.0.0.1:${SERVE_SMOKE_PORT:-8371}"
base="http://$addr"

go build -o "$bin" ./cmd/modpeg

# -sample-every 1 profiles every parse and -slow-parse 1ns records
# every parse in the flight recorder, so the forensics assertions below
# are deterministic.
"$bin" serve -addr "$addr" -grammars calc.core,json.value \
	-registry-dir "$tmp/registry" \
	-sample-every 1 -slow-parse 1ns 2>"$tmp/serve.log" &
pid=$!
cleanup() {
	kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

# Wait for the listener (up to 5s).
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "serve_smoke: server did not come up" >&2
		cat "$tmp/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done

curl -fsS "$base/healthz" | grep -q ok
curl -fsS "$base/readyz" | grep -q ready

out=$(curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1+2*3"}')
printf '%s\n' "$out" | grep -q '"value"'
printf '%s\n' "$out" | grep -q '"stats"'

code=$(curl -sS -o "$tmp/syntax.json" -w '%{http_code}' -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1+"}')
if [ "$code" != "422" ]; then
	echo "serve_smoke: syntax error returned $code, want 422" >&2
	cat "$tmp/syntax.json" >&2
	exit 1
fi
grep -q '"expected"' "$tmp/syntax.json"

metrics=$(curl -fsS "$base/metrics")
printf '%s\n' "$metrics" | grep -q 'modpeg_parse_duration_seconds_bucket'
printf '%s\n' "$metrics" | grep -q 'modpeg_grammar_parses_total{grammar="calc.core",outcome="completed"}'

# Runtime gauges for capacity runs must be exposed.
for g in modpeg_goroutines modpeg_heap_bytes modpeg_gc_pause_seconds \
	modpeg_inflight_requests modpeg_uptime_seconds; do
	printf '%s\n' "$metrics" | grep -q "# TYPE $g gauge"
done

# X-Request-ID: generated (16 hex chars) when the client sends none...
curl -fsS -D "$tmp/gen.hdr" -o /dev/null -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1"}'
grep -qi '^x-request-id: [0-9a-f]\{16\}' "$tmp/gen.hdr"

# ...echoed when supplied, and threaded into typed error bodies.
code=$(curl -sS -D "$tmp/err.hdr" -o "$tmp/err.json" -w '%{http_code}' \
	-X POST "$base/parse" \
	-H 'Content-Type: application/json' -H 'X-Request-ID: smoke-42' \
	-d '{"grammar":"calc.core","input":"1+"}')
if [ "$code" != "422" ]; then
	echo "serve_smoke: request-id probe returned $code, want 422" >&2
	exit 1
fi
grep -qi '^x-request-id: smoke-42' "$tmp/err.hdr"
grep -q '"request_id":"smoke-42"' "$tmp/err.json"

# ------------------------------------------------ tail-latency forensics
# W3C trace context: a fresh traceparent is minted when the client
# sends none...
curl -fsS -D "$tmp/tp-gen.hdr" -o /dev/null -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1"}'
grep -qi '^traceparent: 00-[0-9a-f]\{32\}-[0-9a-f]\{16\}-01' "$tmp/tp-gen.hdr"

# ...and a supplied one is propagated: the trace ID survives but the
# parent span ID is regenerated (this service is its own span).
trace_id=4bf92f3577b34da6a3ce929d0e0e4736
parent_id=00f067aa0ba902b7
curl -fsS -D "$tmp/tp.hdr" -o /dev/null -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-H "traceparent: 00-$trace_id-$parent_id-01" \
	-d '{"grammar":"calc.core","input":"1+2*3"}'
grep -qi "^traceparent: 00-$trace_id-" "$tmp/tp.hdr"
if grep -qi "^traceparent: 00-$trace_id-$parent_id-" "$tmp/tp.hdr"; then
	echo "serve_smoke: response traceparent echoed the caller's parent span" >&2
	exit 1
fi

# The traced parse's trace ID lands as an OpenMetrics exemplar on the
# latency histogram bucket it observed.
curl -fsS "$base/metrics" | grep -q "# {trace_id=\"$trace_id\""

# The same trace ID is the join key into the flight recorder (the 1ns
# slow-parse threshold records every parse).
fr=$(curl -fsS "$base/debug/flightrecorder")
printf '%s\n' "$fr" | jq -e '.capacity == 256 and .total_recorded >= 1' >/dev/null
printf '%s\n' "$fr" | jq -e --arg t "$trace_id" \
	'[.records[] | select(.trace_id == $t and .grammar == "calc.core" and .trigger == "slow" and .outcome == "ok")] | length >= 1' >/dev/null
printf '%s\n' "$fr" | jq -e '.records[0].duration_ns > 0' >/dev/null

# Always-on sampled profiling (rate 1 here): the rolling per-production
# profile is served on /debug/profiles...
curl -fsS "$base/debug/profiles" | jq -e \
	'[.[] | select(.grammar == "calc.core")] | length == 1 and ([.[] | select(.grammar == "calc.core")][0].productions | length) >= 1' >/dev/null

# ...and its aggregates reach /metrics as hot-production counters.
metrics=$(curl -fsS "$base/metrics")
printf '%s\n' "$metrics" | grep -q 'modpeg_sampled_parses_total{grammar="calc.core"}'
printf '%s\n' "$metrics" | grep -q 'modpeg_hot_production_self_seconds_total{grammar="calc.core"'

# --------------------------------------------------- registry lifecycle
# Upload a base grammar, extend it with a modification module, hot-swap
# a new base version, pin the old one, watch a smoke-failing upload get
# rejected without touching the active version, and roll back.

cat >"$tmp/lang1.mpeg" <<'EOF'
module acme.lang;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" ;
void EOF = !. ;
EOF

cat >"$tmp/lang2.mpeg" <<'EOF'
module acme.lang;
option root = Top;
public Top = Item+ EOF ;
Item = <a> "a" / <z> "z" ;
void EOF = !. ;
EOF

cat >"$tmp/lang3-broken.mpeg" <<'EOF'
module acme.lang;
option root = Top;
public Top = Item+ EOF ;
Item = <q> "q" ;
void EOF = !. ;
EOF

cat >"$tmp/ext.mpeg" <<'EOF'
module acme.ext;
modify acme.lang;
option root = acme.lang.Top;
Item += <b> "b" ;
EOF

# POST a module upload; body is {source, probes} built with jq so the
# multi-line .mpeg source is JSON-encoded correctly.
upload() { # upload <tenant> <grammar> <file> [extra-jq-filter]
	jq -Rs "{source: .}${4:+ + $4}" <"$3" |
		curl -sS -o "$tmp/upload.json" -w '%{http_code}' \
			-X POST "$base/grammars/$1/$2" \
			-H 'Content-Type: application/json' -d @-
}

# v1 of the base, with a probe corpus ("aa" must parse) that gates
# every later version of acme.lang.
code=$(upload acme acme.lang "$tmp/lang1.mpeg" '{probes: [{input: "aa"}]}')
if [ "$code" != "201" ]; then
	echo "serve_smoke: base upload returned $code, want 201" >&2
	cat "$tmp/upload.json" >&2
	exit 1
fi
grep -q '"label":"acme/acme.lang@v1"' "$tmp/upload.json"
grep -q '"active":true' "$tmp/upload.json"

# The uploaded grammar serves immediately.
out=$(curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"aaa"}')
printf '%s\n' "$out" | grep -q '"version":1'

# An extension module modifies the registered base without touching it.
code=$(upload acme acme.ext "$tmp/ext.mpeg")
[ "$code" = "201" ] || { echo "serve_smoke: ext upload returned $code" >&2; cat "$tmp/upload.json" >&2; exit 1; }
curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.ext","input":"ab"}' |
	grep -q '"version":1'

# Hot swap: v2 of the base activates atomically; the very next request
# parses against it.
code=$(upload acme acme.lang "$tmp/lang2.mpeg")
[ "$code" = "201" ] || { echo "serve_smoke: v2 upload returned $code" >&2; cat "$tmp/upload.json" >&2; exit 1; }
curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"az"}' |
	grep -q '"version":2'

# The drained v1 stays pinnable — and still rejects v2's language.
code=$(curl -sS -o "$tmp/pin.json" -w '%{http_code}' -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"az","version":1}')
[ "$code" = "422" ] || { echo "serve_smoke: pinned v1 of \"az\" returned $code, want 422" >&2; exit 1; }

# A version that fails the probe corpus is rejected and never activates.
code=$(upload acme acme.lang "$tmp/lang3-broken.mpeg")
[ "$code" = "422" ] || { echo "serve_smoke: smoke-failing upload returned $code, want 422" >&2; cat "$tmp/upload.json" >&2; exit 1; }
grep -q '"error":"registry-smoke"' "$tmp/upload.json"
curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"az"}' |
	grep -q '"version":2'

# Registry traffic is labeled tenant/grammar@version in /metrics.
curl -fsS "$base/metrics" |
	grep -q 'modpeg_grammar_parses_total{grammar="acme/acme.lang@v2",outcome="completed"}'

# Listings expose tenants, versions, states, and in-flight counts.
listing=$(curl -fsS "$base/grammars")
printf '%s\n' "$listing" | jq -e '.tenants[0].name == "acme"' >/dev/null
printf '%s\n' "$listing" | jq -e '[.tenants[0].grammars[] | .name] == ["acme.ext", "acme.lang"]' >/dev/null
printf '%s\n' "$listing" | jq -e '.tenants[0].grammars[] | select(.name == "acme.lang") | .active == 2' >/dev/null

# Rollback: deleting the active v2 reactivates v1.
code=$(curl -sS -o "$tmp/del.json" -w '%{http_code}' -X DELETE "$base/grammars/acme/acme.lang/2")
[ "$code" = "200" ] || { echo "serve_smoke: delete returned $code, want 200" >&2; cat "$tmp/del.json" >&2; exit 1; }
jq -e '.new_active == 1' <"$tmp/del.json" >/dev/null
curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"aa"}' |
	grep -q '"version":1'
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"tenant":"acme","grammar":"acme.lang","input":"az"}')
[ "$code" = "422" ] || { echo "serve_smoke: post-rollback \"az\" returned $code, want 422" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" != "0" ]; then
	echo "serve_smoke: server exited $status after SIGTERM, want 0" >&2
	cat "$tmp/serve.log" >&2
	exit 1
fi

echo "serve_smoke: OK"
