#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of `modpeg serve`: build the
# binary, start the service, hit /healthz, /readyz, POST /parse (both a
# success and a syntax rejection), and /metrics, then send SIGTERM and
# require a clean graceful-shutdown exit. Plain sh + curl so it runs in
# CI and locally alike.
set -eu
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
bin="$tmp/modpeg"
addr="127.0.0.1:${SERVE_SMOKE_PORT:-8371}"
base="http://$addr"

go build -o "$bin" ./cmd/modpeg

"$bin" serve -addr "$addr" -grammars calc.core,json.value 2>"$tmp/serve.log" &
pid=$!
cleanup() {
	kill -9 "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

# Wait for the listener (up to 5s).
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "serve_smoke: server did not come up" >&2
		cat "$tmp/serve.log" >&2
		exit 1
	fi
	sleep 0.1
done

curl -fsS "$base/healthz" | grep -q ok
curl -fsS "$base/readyz" | grep -q ready

out=$(curl -fsS -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1+2*3"}')
printf '%s\n' "$out" | grep -q '"value"'
printf '%s\n' "$out" | grep -q '"stats"'

code=$(curl -sS -o "$tmp/syntax.json" -w '%{http_code}' -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1+"}')
if [ "$code" != "422" ]; then
	echo "serve_smoke: syntax error returned $code, want 422" >&2
	cat "$tmp/syntax.json" >&2
	exit 1
fi
grep -q '"expected"' "$tmp/syntax.json"

metrics=$(curl -fsS "$base/metrics")
printf '%s\n' "$metrics" | grep -q 'modpeg_parse_duration_seconds_bucket'
printf '%s\n' "$metrics" | grep -q 'modpeg_grammar_parses_total{grammar="calc.core",outcome="completed"}'

# Runtime gauges for capacity runs must be exposed.
for g in modpeg_goroutines modpeg_heap_bytes modpeg_gc_pause_seconds \
	modpeg_inflight_requests modpeg_uptime_seconds; do
	printf '%s\n' "$metrics" | grep -q "# TYPE $g gauge"
done

# X-Request-ID: generated (16 hex chars) when the client sends none...
curl -fsS -D "$tmp/gen.hdr" -o /dev/null -X POST "$base/parse" \
	-H 'Content-Type: application/json' \
	-d '{"grammar":"calc.core","input":"1"}'
grep -qi '^x-request-id: [0-9a-f]\{16\}' "$tmp/gen.hdr"

# ...echoed when supplied, and threaded into typed error bodies.
code=$(curl -sS -D "$tmp/err.hdr" -o "$tmp/err.json" -w '%{http_code}' \
	-X POST "$base/parse" \
	-H 'Content-Type: application/json' -H 'X-Request-ID: smoke-42' \
	-d '{"grammar":"calc.core","input":"1+"}')
if [ "$code" != "422" ]; then
	echo "serve_smoke: request-id probe returned $code, want 422" >&2
	exit 1
fi
grep -qi '^x-request-id: smoke-42' "$tmp/err.hdr"
grep -q '"request_id":"smoke-42"' "$tmp/err.json"

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" != "0" ]; then
	echo "serve_smoke: server exited $status after SIGTERM, want 0" >&2
	cat "$tmp/serve.log" >&2
	exit 1
fi

echo "serve_smoke: OK"
