module modpeg

go 1.22
