module modpeg

go 1.24
