package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, stdin string, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

func TestUsageAndUnknown(t *testing.T) {
	_, errb, code := runCmd(t, "")
	if code != 2 || !strings.Contains(errb, "commands:") {
		t.Fatalf("no-args: code=%d err=%q", code, errb)
	}
	_, errb, code = runCmd(t, "", "frobnicate")
	if code != 2 || !strings.Contains(errb, "unknown command") {
		t.Fatalf("unknown: code=%d err=%q", code, errb)
	}
	out, _, code := runCmd(t, "", "help")
	if code != 0 || !strings.Contains(out, "modules") {
		t.Fatalf("help: code=%d", code)
	}
}

func TestModules(t *testing.T) {
	out, _, code := runCmd(t, "", "modules")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	for _, frag := range []string{"calc.core", "java.full", "* json.value"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestStats(t *testing.T) {
	out, errb, code := runCmd(t, "", "stats", "calc.full")
	if code != 0 {
		t.Fatalf("code = %d, err = %s", code, errb)
	}
	for _, frag := range []string{"module", "calc.core", "composed:", "optimized:", "optimization report"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	_, _, code = runCmd(t, "", "stats")
	if code != 1 {
		t.Fatal("missing arg must fail")
	}
}

func TestPrint(t *testing.T) {
	out, _, code := runCmd(t, "", "print", "calc.core")
	if code != 0 || !strings.Contains(out, "calc.core.Sum") {
		t.Fatalf("print failed: %d\n%s", code, out)
	}
	opt, _, code := runCmd(t, "", "print", "-optimized", "calc.core")
	if code != 0 || !strings.Contains(opt, "leftrec") {
		t.Fatalf("optimized print failed: %d", code)
	}
}

func TestCheck(t *testing.T) {
	out, _, code := runCmd(t, "", "check", "java.full")
	if code != 0 || !strings.Contains(out, "ok:") {
		t.Fatalf("check: code=%d out=%q", code, out)
	}
	_, errb, code := runCmd(t, "", "check", "no.such")
	if code != 1 || !strings.Contains(errb, "no.such") {
		t.Fatalf("check unknown: code=%d err=%q", code, errb)
	}
}

func TestParseStdinAndFile(t *testing.T) {
	out, _, code := runCmd(t, "1+2*3", "parse", "calc.core")
	if code != 0 || !strings.Contains(out, `(Add (Num "1") (Mul (Num "2") (Num "3")))`) {
		t.Fatalf("parse stdin: code=%d out=%q", code, out)
	}

	dir := t.TempDir()
	file := filepath.Join(dir, "in.calc")
	if err := os.WriteFile(file, []byte("2**5"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code = runCmd(t, "", "parse", "-indent", "-stats", "calc.full", file)
	if code != 0 || !strings.Contains(out, "Pow") || !strings.Contains(out, "stats:") {
		t.Fatalf("parse file: code=%d out=%q", code, out)
	}

	_, errb, code := runCmd(t, "1+", "parse", "calc.core")
	if code != 1 || !strings.Contains(errb, "syntax error") {
		t.Fatalf("parse error: code=%d err=%q", code, errb)
	}
	_, _, code = runCmd(t, "", "parse", "calc.core", filepath.Join(dir, "missing"))
	if code != 1 {
		t.Fatal("missing file must fail")
	}
}

func TestParseWithLimits(t *testing.T) {
	// Generous limits: the parse completes and reports stats.
	out, errb, code := runCmd(t, "1+2*3", "parse", "-stats",
		"-timeout", "10s", "-max-memo", "1048576", "-max-depth", "10000", "calc.core")
	if code != 0 || !strings.Contains(out, "(Add") || !strings.Contains(out, "stats:") {
		t.Fatalf("governed parse: code=%d out=%q err=%q", code, out, errb)
	}
	// A depth limit a nested input blows: typed limit failure, exit 1.
	deep := strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000)
	_, errb, code = runCmd(t, deep, "parse", "-max-depth", "64", "calc.core")
	if code != 1 || !strings.Contains(errb, "call depth") {
		t.Fatalf("depth limit: code=%d err=%q", code, errb)
	}
	// Strict memo budget: hard failure instead of shedding.
	big := strings.Repeat("1+", 4000) + "1"
	_, errb, code = runCmd(t, big, "parse", "-max-memo", "512", "-strict", "calc.core")
	if code != 1 || !strings.Contains(errb, "memo footprint") {
		t.Fatalf("strict memo: code=%d err=%q", code, errb)
	}
	// The same budget without -strict degrades and still prints the AST.
	out, errb, code = runCmd(t, big, "parse", "-max-memo", "512", "-stats", "calc.core")
	if code != 0 || !strings.Contains(out, "(Add") || !strings.Contains(out, "sheds=1") {
		t.Fatalf("shedding parse: code=%d out=%q err=%q", code, out, errb)
	}
}

func TestParseIncremental(t *testing.T) {
	dir := t.TempDir()
	edits := filepath.Join(dir, "edits.txt")
	script := `# turn 1+2 into 10+2*3, then into 10+2*34
@1 0 "0"
@3 0 "*3"

@6 0 "4"
`
	if err := os.WriteFile(edits, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runCmd(t, "1+2", "parse", "-incremental", "-edits", edits, "-stats", "calc.core")
	if code != 0 {
		t.Fatalf("incremental parse: code=%d err=%q", code, errb)
	}
	if !strings.Contains(out, `(Add (Num "10") (Mul (Num "2") (Num "34")))`) {
		t.Fatalf("final value missing in:\n%s", out)
	}
	if !strings.Contains(out, "apply 1 (2 edits, ok):") || !strings.Contains(out, "apply 2 (1 edits, ok):") {
		t.Fatalf("per-apply stats missing in:\n%s", out)
	}

	// An edit script that leaves the document broken: syntax error, exit 1.
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("@1 1 \"?\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb, code = runCmd(t, "1+2", "parse", "-incremental", "-edits", bad, "calc.core")
	if code != 1 || !strings.Contains(errb, "syntax error") {
		t.Fatalf("broken doc: code=%d err=%q", code, errb)
	}

	// Malformed script lines are reported with their line number.
	ugly := filepath.Join(dir, "ugly.txt")
	if err := os.WriteFile(ugly, []byte("@zero 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errb, code = runCmd(t, "1+2", "parse", "-incremental", "-edits", ugly, "calc.core")
	if code != 1 || !strings.Contains(errb, "line 1") {
		t.Fatalf("bad script: code=%d err=%q", code, errb)
	}

	// Flag validation: -incremental needs -edits, -edits needs -incremental,
	// and resource limits are mutually exclusive with incremental mode.
	_, errb, code = runCmd(t, "1+2", "parse", "-incremental", "calc.core")
	if code != 1 || !strings.Contains(errb, "requires -edits") {
		t.Fatalf("missing -edits: code=%d err=%q", code, errb)
	}
	_, errb, code = runCmd(t, "1+2", "parse", "-edits", edits, "calc.core")
	if code != 1 || !strings.Contains(errb, "requires -incremental") {
		t.Fatalf("bare -edits: code=%d err=%q", code, errb)
	}
	_, errb, code = runCmd(t, "1+2", "parse", "-incremental", "-edits", edits, "-max-depth", "64", "calc.core")
	if code != 1 || !strings.Contains(errb, "mutually exclusive") {
		t.Fatalf("limits+incremental: code=%d err=%q", code, errb)
	}
}

func TestParseWithModuleDir(t *testing.T) {
	dir := t.TempDir()
	mod := filepath.Join(dir, "user.lang.mpeg")
	src := "module user.lang;\npublic S = $([a-z]+) !. ;\n"
	if err := os.WriteFile(mod, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, errb, code := runCmd(t, "hello", "parse", "-d", dir, "user.lang")
	if code != 0 || !strings.Contains(out, `"hello"`) {
		t.Fatalf("code=%d out=%q err=%q", code, out, errb)
	}
}

func TestGenerate(t *testing.T) {
	out, _, code := runCmd(t, "", "generate", "-pkg", "cp", "calc.core")
	if code != 0 || !strings.Contains(out, "package cp") {
		t.Fatalf("generate: code=%d", code)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "gen.go")
	_, _, code = runCmd(t, "", "generate", "-o", file, "json.value")
	if code != 0 {
		t.Fatal("generate to file failed")
	}
	data, err := os.ReadFile(file)
	if err != nil || !strings.Contains(string(data), "package parser") {
		t.Fatalf("written file wrong: %v", err)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, errb, code := runCmd(t, "", "experiment", "-kb", "2", "-mintime", "1ms", "fig3")
	if code != 0 || !strings.Contains(out, "backtracking") {
		t.Fatalf("experiment: code=%d err=%q", code, errb)
	}
	_, _, code = runCmd(t, "", "experiment", "bogus")
	if code != 1 {
		t.Fatal("unknown experiment must fail")
	}
	_, _, code = runCmd(t, "", "experiment")
	if code != 1 {
		t.Fatal("missing arg must fail")
	}
	out, _, code = runCmd(t, "", "experiment", "-kb", "2", "-mintime", "1ms", "table1")
	if code != 0 || !strings.Contains(out, "calc.core") {
		t.Fatalf("table1: code=%d", code)
	}
	out, _, code = runCmd(t, "", "experiment", "-kb", "4", "-mintime", "1ms", "table5")
	if code != 0 || !strings.Contains(out, "engine residency") || !strings.Contains(out, "reused session") {
		t.Fatalf("table5: code=%d out=%q", code, out)
	}
	out, _, code = runCmd(t, "", "experiment", "-kb", "4", "-mintime", "1ms", "limits")
	if code != 0 || !strings.Contains(out, "resource governance") ||
		!strings.Contains(out, "limit error (deadline)") {
		t.Fatalf("limits: code=%d out=%q", code, out)
	}
}

func TestFmtCommand(t *testing.T) {
	out, errb, code := runCmd(t, "module m;\npublic   S =  \"x\"   /   \"y\" ;", "fmt")
	if code != 0 || !strings.Contains(out, `public S = "x" / "y" ;`) {
		t.Fatalf("fmt stdin: code=%d out=%q err=%q", code, out, errb)
	}
	dir := t.TempDir()
	file := filepath.Join(dir, "m.mpeg")
	if err := os.WriteFile(file, []byte("module m;\nS=\"x\";"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, code = runCmd(t, "", "fmt", "-w", file)
	if code != 0 {
		t.Fatal("fmt -w failed")
	}
	data, _ := os.ReadFile(file)
	if !strings.Contains(string(data), `S = "x" ;`) {
		t.Fatalf("file = %q", data)
	}
	// Formatting is idempotent.
	out1, _, _ := runCmd(t, "", "fmt", file)
	if out1 != string(data) {
		t.Fatalf("not idempotent: %q vs %q", out1, data)
	}
	_, _, code = runCmd(t, "not a module", "fmt")
	if code != 1 {
		t.Fatal("bad module must fail")
	}
	_, _, code = runCmd(t, "", "fmt", filepath.Join(dir, "missing.mpeg"))
	if code != 1 {
		t.Fatal("missing file must fail")
	}
}

func TestParseTraceFlag(t *testing.T) {
	out, _, code := runCmd(t, "1+2", "parse", "-trace", "calc.core")
	if code != 0 || !strings.Contains(out, "Program @0 {") || !strings.Contains(out, "(Add") {
		t.Fatalf("trace parse: code=%d out=%q", code, out)
	}
}

func TestCheckLintFlag(t *testing.T) {
	dir := t.TempDir()
	mod := filepath.Join(dir, "smelly.mpeg")
	src := "module smelly;\npublic S = \"in\" / \"int\" ;\nDead = \"d\" ;\n"
	if err := os.WriteFile(mod, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runCmd(t, "", "check", "-lint", "-d", dir, "smelly")
	if code != 0 || !strings.Contains(out, "lint:") || !strings.Contains(out, "shadowed") {
		t.Fatalf("lint output: code=%d out=%q", code, out)
	}
	// Bundled grammars lint clean.
	out, _, code = runCmd(t, "", "check", "-lint", "java.full")
	if code != 0 || strings.Contains(out, "lint:") {
		t.Fatalf("java.full must lint clean: %q", out)
	}
}

func TestParseJSONFlag(t *testing.T) {
	out, _, code := runCmd(t, "1+2", "parse", "-json", "calc.core")
	if code != 0 || !strings.Contains(out, `"kind": "node"`) || !strings.Contains(out, `"name": "Add"`) {
		t.Fatalf("json parse: code=%d out=%q", code, out)
	}
}

func TestParsePGOFlag(t *testing.T) {
	// Round trip: profile -json writes the report, parse -pgo feeds it
	// back into Compile for profile-guided inlining. The AST must be
	// unchanged; the inlined compile must still parse the corpus.
	report, errb, code := runCmd(t, "", "profile", "-gen", "2", "-json", "calc.core")
	if code != 0 {
		t.Fatalf("profile: code = %d, err = %s", code, errb)
	}
	path := filepath.Join(t.TempDir(), "prof.json")
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	plain, _, code := runCmd(t, "1+2*3", "parse", "calc.core")
	if code != 0 {
		t.Fatalf("plain parse: code = %d", code)
	}
	pgo, errb, code := runCmd(t, "1+2*3", "parse", "-pgo", path, "calc.core")
	if code != 0 {
		t.Fatalf("pgo parse: code = %d, err = %s", code, errb)
	}
	if pgo != plain {
		t.Errorf("-pgo changed the AST:\n pgo:   %s\n plain: %s", pgo, plain)
	}
	if _, errb, code := runCmd(t, "", "parse", "-pgo", filepath.Join(t.TempDir(), "missing.json"), "calc.core"); code == 0 {
		t.Errorf("missing -pgo file must fail, got code 0 (%s)", errb)
	}
}

func TestParseProfileFlag(t *testing.T) {
	out, _, code := runCmd(t, "1+2*3", "parse", "-profile", "calc.core")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	for _, frag := range []string{"(Add", "hot productions:", "production", "calls", "total"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestProfileCommand(t *testing.T) {
	out, errb, code := runCmd(t, `{"a": [1, 2, {"b": true}]}`, "profile", "-n", "3", "json.value")
	if code != 0 {
		t.Fatalf("code = %d, err = %s", code, errb)
	}
	for _, frag := range []string{"profile: json.value, 3 parse(s)", "production", "self-ms", "total", "stats: calls="} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
	// The total row aggregates all 3 repetitions of the reported stats
	// line: calls in the table == calls in the stats line.
	lines := strings.Split(out, "\n")
	var totalCalls, statsCalls string
	for _, ln := range lines {
		fields := strings.Fields(ln)
		if len(fields) > 1 && fields[0] == "total" {
			totalCalls = fields[1]
		}
		if strings.HasPrefix(ln, "stats: calls=") {
			statsCalls = strings.TrimPrefix(strings.SplitN(strings.Fields(ln)[1], " ", 2)[0], "calls=")
		}
	}
	if totalCalls == "" || totalCalls != statsCalls {
		t.Errorf("table total %q != stats calls %q in:\n%s", totalCalls, statsCalls, out)
	}
}

func TestProfileCommandJSONAndGen(t *testing.T) {
	out, errb, code := runCmd(t, "", "profile", "-gen", "2", "-json", "java.core")
	if code != 0 {
		t.Fatalf("code = %d, err = %s", code, errb)
	}
	var prof struct {
		TotalCalls  int64 `json:"total_calls"`
		Productions []struct {
			Name  string `json:"name"`
			Calls int64  `json:"calls"`
		} `json:"productions"`
	}
	if err := json.Unmarshal([]byte(out), &prof); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if prof.TotalCalls <= 0 || len(prof.Productions) == 0 {
		t.Fatalf("empty profile: %+v", prof)
	}
	var sum int64
	for _, p := range prof.Productions {
		sum += p.Calls
	}
	if sum != prof.TotalCalls {
		t.Errorf("production calls sum %d != total_calls %d", sum, prof.TotalCalls)
	}
}

func TestProfileCommandMetricsAndErrors(t *testing.T) {
	out, _, code := runCmd(t, "1+2", "profile", "-metrics", "calc.core")
	if code != 0 || !strings.Contains(out, "engine metrics:") || !strings.Contains(out, `"parses_started"`) {
		t.Fatalf("metrics: code=%d out=%q", code, out)
	}
	if _, errb, code := runCmd(t, "", "profile"); code != 1 || !strings.Contains(errb, "usage:") {
		t.Fatalf("missing module: code=%d err=%q", code, errb)
	}
	if _, errb, code := runCmd(t, "", "profile", "-n", "0", "calc.core"); code != 1 || !strings.Contains(errb, "-n") {
		t.Fatalf("bad reps: code=%d err=%q", code, errb)
	}
	if _, errb, code := runCmd(t, "1x2", "profile", "calc.core"); code != 1 || errb == "" {
		t.Fatalf("syntax error must fail: code=%d err=%q", code, errb)
	}
}

// writeTinyModule drops the two-production trace-test grammar into a
// temp module dir and returns the dir.
func writeTinyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	src := "module tiny;\npublic A = B B !. ;\npublic B = \"x\" ;\noption root = A;\n"
	if err := os.WriteFile(filepath.Join(dir, "tiny.mpeg"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// traceShape loads a Chrome trace-event file and projects each event to
// "ph name" — the timestamp-free golden shape of the trace.
func traceShape(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v\n%s", err, data)
	}
	shape := make([]string, 0, len(events))
	for _, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		shape = append(shape, ph+" "+name)
	}
	return shape
}

func TestParseTraceJSON(t *testing.T) {
	dir := writeTinyModule(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	stdout, errb, code := runCmd(t, "xx", "parse", "-d", dir, "-trace-json", out, "tiny")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errb)
	}
	if !strings.Contains(stdout, "trace:") || !strings.Contains(stdout, out) {
		t.Errorf("missing trace summary in output:\n%s", stdout)
	}
	// The tiny grammar's trace shape is a golden: the default optimizer
	// inlines B, leaving the metadata record plus the root span.
	want := []string{"M process_name", "B tiny.A", "E tiny.A"}
	got := traceShape(t, out)
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("trace shape = %v, want %v", got, want)
	}
}

func TestParseTraceJSONGoverned(t *testing.T) {
	dir := writeTinyModule(t)
	out := filepath.Join(t.TempDir(), "trace.json")
	_, errb, code := runCmd(t, "xx", "parse", "-d", dir, "-trace-json", out, "-max-depth", "64", "tiny")
	if code != 0 {
		t.Fatalf("governed trace-json: code=%d err=%q", code, errb)
	}
	if got := traceShape(t, out); len(got) == 0 || got[0] != "M process_name" {
		t.Errorf("governed trace shape = %v", got)
	}
	if _, errb, code := runCmd(t, "xx", "parse", "-d", dir, "-trace-json", out, "-trace", "tiny"); code != 1 || !strings.Contains(errb, "mutually exclusive") {
		t.Errorf("-trace-json with -trace must fail: code=%d err=%q", code, errb)
	}
}

func TestProfileTraceJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	stdout, errb, code := runCmd(t, "1+2*3", "profile", "-n", "2", "-trace-json", out, "calc.core")
	if code != 0 {
		t.Fatalf("code=%d err=%q", code, errb)
	}
	if !strings.Contains(stdout, "trace:") {
		t.Errorf("missing trace summary:\n%s", stdout)
	}
	shape := traceShape(t, out)
	if len(shape) < 3 || shape[0] != "M process_name" {
		t.Errorf("trace shape = %v", shape)
	}
	// Two profiled reps both land in the one trace: the root span must
	// appear twice.
	roots := 0
	for _, s := range shape {
		if strings.HasPrefix(s, "B calc.core.") {
			roots++
		}
	}
	if roots < 2 {
		t.Errorf("expected spans from both reps, shape = %v", shape)
	}
}

func TestProfileMetricsHistograms(t *testing.T) {
	out, _, code := runCmd(t, "1+2", "profile", "-metrics", "calc.core")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	for _, frag := range []string{`"parse_duration_ns"`, `"parse_input_bytes"`, `"buckets"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("profile -metrics output missing %q", frag)
		}
	}
}

func TestServeUsageErrors(t *testing.T) {
	if _, errb, code := runCmd(t, "", "serve", "extra-arg"); code != 1 || !strings.Contains(errb, "usage: modpeg serve") {
		t.Fatalf("extra arg: code=%d err=%q", code, errb)
	}
	if _, errb, code := runCmd(t, "", "serve", "-grammars", "no.such.module", "-addr", "127.0.0.1:0"); code != 1 || !strings.Contains(errb, "no.such.module") {
		t.Fatalf("bad grammar: code=%d err=%q", code, errb)
	}
}

func TestLoadtestCommand(t *testing.T) {
	artifact := filepath.Join(t.TempDir(), "LOADTEST.json")
	out, errb, code := runCmd(t, "", "loadtest",
		"-duration", "400ms", "-workers", "2", "-warmup", "0s",
		"-no-adversarial", "-slo-p99", "0s", "-slo-errors", "0.5",
		"-json", artifact)
	if code != 0 {
		t.Fatalf("code = %d, err = %s", code, errb)
	}
	for _, frag := range []string{"mode=closed", "closed/w2", "outcomes (", "p99"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in report:\n%s", frag, out)
		}
	}
	if !strings.Contains(errb, "spawned in-process server") {
		t.Errorf("no spawn notice on stderr: %s", errb)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Mode   string `json:"mode"`
		Phases []struct {
			Sent  int64 `json:"sent"`
			P99NS int64 `json:"p99_ns"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if rep.Mode != "closed" || len(rep.Phases) != 1 || rep.Phases[0].Sent == 0 || rep.Phases[0].P99NS <= 0 {
		t.Errorf("artifact incomplete: %s", data)
	}
}

func TestLoadtestErrors(t *testing.T) {
	_, errb, code := runCmd(t, "", "loadtest", "-mode", "bogus", "-warmup", "0s")
	if code != 1 || !strings.Contains(errb, "unknown mode") {
		t.Fatalf("bad mode: code=%d err=%q", code, errb)
	}
	_, errb, code = runCmd(t, "", "loadtest", "extra-arg")
	if code != 1 || !strings.Contains(errb, "usage: modpeg loadtest") {
		t.Fatalf("extra arg: code=%d err=%q", code, errb)
	}
	// An unreachable floor must flip the exit code via the gate.
	_, errb, code = runCmd(t, "", "loadtest",
		"-duration", "300ms", "-workers", "2", "-warmup", "0s",
		"-no-adversarial", "-no-scrape", "-slo-p99", "0s", "-slo-errors", "0.5",
		"-min-rps", "9999999")
	if code != 1 || !strings.Contains(errb, "gates failed") {
		t.Fatalf("gate: code=%d err=%q", code, errb)
	}
}
