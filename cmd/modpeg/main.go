// Command modpeg is the command-line front end of the modular-PEG parser
// toolkit: it composes module grammars, reports their statistics, checks
// them, parses inputs, and generates standalone Go parsers.
//
// Usage:
//
//	modpeg modules
//	modpeg stats   [-d dir] <top-module>
//	modpeg print   [-d dir] [-optimized] <top-module>
//	modpeg check   [-d dir] <top-module>
//	modpeg parse   [-d dir] [-indent] [-stats] [-timeout d] [-max-memo n] <top-module> [file]
//	modpeg generate [-d dir] [-pkg name] [-o file] <top-module>
//	modpeg serve   [-addr host:port] [-grammars a,b] [-timeout d] [...]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"modpeg"
	"modpeg/internal/core"
	"modpeg/internal/experiments"
	"modpeg/internal/grammars"
	"modpeg/internal/loadbench"
	"modpeg/internal/peg"
	"modpeg/internal/registry"
	"modpeg/internal/serve"
	"modpeg/internal/syntax"
	"modpeg/internal/vm"
	"modpeg/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "modules":
		err = cmdModules(stdout)
	case "stats":
		err = cmdStats(rest, stdout)
	case "print":
		err = cmdPrint(rest, stdout)
	case "check":
		err = cmdCheck(rest, stdout)
	case "parse":
		err = cmdParse(rest, stdin, stdout)
	case "profile":
		err = cmdProfile(rest, stdin, stdout)
	case "generate":
		err = cmdGenerate(rest, stdout)
	case "experiment":
		err = cmdExperiment(rest, stdout)
	case "serve":
		err = cmdServe(rest, stderr)
	case "loadtest":
		err = cmdLoadtest(rest, stdout, stderr)
	case "fmt":
		err = cmdFmt(rest, stdin, stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "modpeg: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "modpeg: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `modpeg — modular PEG parser toolkit

commands:
  modules                          list bundled grammar modules
  stats    [-d dir] <top>          per-module and composed grammar statistics
  print    [-d dir] [-optimized] <top>
                                   print the composed grammar
  check    [-d dir] <top>          compose and run the static checks
  parse    [-d dir] [-engine name] [-indent] [-stats] [-profile]
           [-pgo profile.json] [-trace-json file] [-timeout d]
           [-max-memo n] [-max-depth n] [-strict]
           [-incremental -edits script] <top> [file]
                                   parse a file (or stdin) and print the AST,
                                   optionally under resource limits, through
                                   an incremental edit script, exporting a
                                   Chrome trace-event file, on a selected
                                   engine (-engine compiled runs the
                                   closure-compiled engine), or recompiled
                                   with profile-guided inlining (-pgo takes
                                   the JSON written by profile -json)
  profile  [-d dir] [-n reps] [-top n] [-json] [-metrics] [-trace-json file]
           [-gen kb] <top> [file]
                                   profile parses of a file (or stdin, or a
                                   generated corpus) per production
  generate [-d dir] [-pkg p] [-o file] <top>
                                   emit a standalone Go parser
  experiment [-kb n] [-mintime d] <table1..table5|table7..table9|table11|limits|fig1..fig3|hotprods|all>
                                   run the paper-reproduction experiments
  serve    [-addr host:port] [-grammars a,b] [-d dir] [-timeout d] [-max-input n]
           [-max-memo n] [-max-depth n] [-strict] [-max-body n] [-pprof] [-quiet]
           [-registry-dir dir] [-max-tenants n]
                                   run the HTTP parse service: POST /parse,
                                   GET /metrics (Prometheus), /healthz, /readyz,
                                   and the multi-tenant grammar registry
                                   (upload, hot-swap, pin, roll back grammar
                                   versions under /grammars)
  loadtest [-url http://host:port] [-mode closed|open|ramp] [-workers n] [-rps r]
           [-duration d] [-ramp-start r] [-ramp-step r] [-ramp-max r] [-step d]
           [-slo-p99 d] [-slo-errors f] [-seed n] [-warmup d] [-no-adversarial]
           [-tenants n] [-omit-values] [-no-scrape] [-json file] [-min-rps r]
           [-max-p99 d]
                                   drive a serve endpoint (or a spawned
                                   in-process server) with mixed-grammar
                                   traffic and report latency quantiles,
                                   throughput, error breakdown, and server
                                   telemetry; -min-rps/-max-p99 gate CI
  fmt      [-w] [file...]          reformat .mpeg module files (stdin without args)
`)
}

// moduleOpts builds the option list shared by all grammar-loading
// commands.
func moduleOpts(dir string) []modpeg.Option {
	var opts []modpeg.Option
	if dir != "" {
		opts = append(opts, modpeg.WithModuleDir(dir))
	}
	return opts
}

func cmdModules(w io.Writer) error {
	names := grammars.ModuleNames()
	sort.Strings(names)
	tops := map[string]bool{}
	for _, t := range grammars.TopModules() {
		tops[t] = true
	}
	for _, n := range names {
		mark := " "
		if tops[n] {
			mark = "*"
		}
		fmt.Fprintf(w, "%s %s\n", mark, n)
	}
	fmt.Fprintln(w, "\n(* = composable top module)")
	return nil
}

func cmdStats(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: modpeg stats [-d dir] <top-module>")
	}
	top := fs.Arg(0)

	p, err := modpeg.New(top, moduleOpts(*dir)...)
	if err != nil {
		return err
	}
	// Per-module statistics require the raw modules.
	resolver := resolverFor(*dir)
	fmt.Fprintln(w, peg.ModuleStatsHeader())
	for _, name := range p.Modules() {
		base := name
		if i := strings.IndexByte(base, '<'); i >= 0 {
			base = base[:i]
		}
		src, err := resolver.Resolve(base)
		if err != nil {
			continue
		}
		m, err := syntax.Parse(src)
		if err != nil {
			continue
		}
		st := peg.StatsOf(m)
		st.Module = name
		fmt.Fprintln(w, st.Row())
	}
	fmt.Fprintf(w, "\ncomposed: %s\n", p.Stats())
	fmt.Fprintf(w, "optimized: %s\n", p.OptimizedStats())
	fmt.Fprintf(w, "\noptimization report:\n%s", p.OptimizationReport())
	return nil
}

func resolverFor(dir string) core.Resolver {
	if dir == "" {
		return grammars.Resolver()
	}
	return core.MultiResolver{core.DirResolver{Dir: dir}, grammars.Resolver()}
}

func cmdPrint(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("print", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	optimized := fs.Bool("optimized", false, "print the optimized grammar")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: modpeg print [-d dir] [-optimized] <top-module>")
	}
	p, err := modpeg.New(fs.Arg(0), moduleOpts(*dir)...)
	if err != nil {
		return err
	}
	if *optimized {
		fmt.Fprint(w, p.OptimizedGrammar())
	} else {
		fmt.Fprint(w, p.Grammar())
	}
	return nil
}

func cmdCheck(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	lint := fs.Bool("lint", false, "also report non-fatal grammar smells")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: modpeg check [-d dir] [-lint] <top-module>")
	}
	p, err := modpeg.New(fs.Arg(0), moduleOpts(*dir)...)
	if err != nil {
		return err
	}
	if err := p.Check(); err != nil {
		return err
	}
	if *lint {
		for _, warning := range p.Lint() {
			fmt.Fprintf(w, "lint: %s\n", warning)
		}
	}
	s := p.Stats()
	fmt.Fprintf(w, "ok: %d modules, %d productions, %d alternatives\n",
		s.Modules, s.Productions, s.Alternatives)
	return nil
}

func cmdParse(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("parse", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	indent := fs.Bool("indent", false, "print the AST as an indented tree")
	asJSON := fs.Bool("json", false, "print the AST as JSON")
	withStats := fs.Bool("stats", false, "print engine statistics")
	withTrace := fs.Bool("trace", false, "stream a production-call trace before the AST")
	traceJSON := fs.String("trace-json", "", "write a Chrome trace-event (Perfetto) JSON file of the parse")
	withProfile := fs.Bool("profile", false, "print the top-10 hot productions after the AST")
	timeout := fs.Duration("timeout", 0, "abort the parse after this wall-clock duration (0 = unlimited)")
	maxMemo := fs.Int("max-memo", 0, "memo-table budget in bytes; the engine sheds memoization past it (0 = unlimited)")
	maxDepth := fs.Int("max-depth", 0, "production-call depth limit (0 = unlimited)")
	strict := fs.Bool("strict", false, "fail when the memo budget is hit instead of shedding memoization")
	incremental := fs.Bool("incremental", false, "parse as an editable document and replay the -edits script incrementally")
	editsPath := fs.String("edits", "", "edit script for -incremental: lines \"@off oldLen [\\\"text\\\"]\", blank-line-separated batches")
	pgoPath := fs.String("pgo", "", "profile report (modpeg profile -json) enabling profile-guided inlining")
	engine := fs.String("engine", "optimized", "parse engine: optimized, compiled, naive-packrat, or backtracking")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: modpeg parse [-d dir] [-engine name] [-indent] [-stats] [-profile] [-pgo profile.json] [-trace-json file] [-timeout d] [-max-memo n] [-max-depth n] [-strict] [-incremental -edits script] <top-module> [file]")
	}
	opts := moduleOpts(*dir)
	e, err := modpeg.EngineByName(*engine)
	if err != nil {
		return err
	}
	if *pgoPath != "" {
		data, rerr := os.ReadFile(*pgoPath)
		if rerr != nil {
			return rerr
		}
		pgo, perr := modpeg.LoadPGO(data)
		if perr != nil {
			return perr
		}
		e.PGO = pgo
	}
	if *engine != "optimized" || *pgoPath != "" {
		opts = append(opts, modpeg.WithEngine(e))
	}
	p, err := modpeg.New(fs.Arg(0), opts...)
	if err != nil {
		return err
	}

	name := "<stdin>"
	var input []byte
	if fs.NArg() == 2 {
		name = fs.Arg(1)
		input, err = os.ReadFile(name)
	} else {
		input, err = io.ReadAll(stdin)
	}
	if err != nil {
		return err
	}

	lim := modpeg.Limits{
		MaxParseDuration: *timeout,
		MaxMemoBytes:     *maxMemo,
		MaxCallDepth:     *maxDepth,
		Strict:           *strict,
	}
	governed := lim != (modpeg.Limits{})

	if *incremental {
		if *editsPath == "" {
			return fmt.Errorf("parse: -incremental requires -edits <script>")
		}
		if *withTrace || *withProfile || *traceJSON != "" || governed {
			return fmt.Errorf("parse: -incremental is mutually exclusive with -trace, -profile, -trace-json, and resource limits")
		}
		return parseIncremental(p, name, string(input), *editsPath, w, *withStats, *indent, *asJSON)
	}
	if *editsPath != "" {
		return fmt.Errorf("parse: -edits requires -incremental")
	}

	var v modpeg.Value
	var stats modpeg.ParseStats
	var prof *modpeg.Profile
	var trace *modpeg.TraceExporter
	switch {
	case *traceJSON != "":
		if *withTrace || *withProfile {
			return fmt.Errorf("parse: -trace-json is mutually exclusive with -trace and -profile")
		}
		f, ferr := os.Create(*traceJSON)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		trace = p.NewTraceJSON(f)
		if governed {
			v, stats, err = p.ParseContextWithHook(context.Background(), name, string(input), lim, trace)
		} else {
			v, stats, err = p.ParseWithHook(name, string(input), trace)
		}
		if cerr := trace.Close(); cerr != nil && err == nil {
			err = cerr
		}
	case *withTrace:
		v, err = p.ParseWithTrace(name, string(input), w)
	case *withProfile:
		v, stats, prof, err = p.ParseWithProfile(name, string(input))
	case governed:
		v, stats, err = p.NewSession().ParseContext(context.Background(), name, string(input), lim)
	default:
		v, stats, err = p.ParseWithStats(name, string(input))
	}
	if err != nil {
		if pe, ok := err.(*vm.ParseError); ok {
			return fmt.Errorf("%s", pe.Detail())
		}
		return err
	}
	switch {
	case *asJSON:
		out, err := modpeg.ValueToJSON(v)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	case *indent:
		fmt.Fprint(w, modpeg.IndentValue(v))
	default:
		fmt.Fprintln(w, modpeg.FormatValue(v))
	}
	if *withStats {
		fmt.Fprintf(w, "stats: %s\n", stats)
	}
	if trace != nil {
		fmt.Fprintf(w, "trace: %d events written to %s\n", trace.Events(), *traceJSON)
	}
	if prof != nil {
		fmt.Fprintf(w, "\nhot productions:\n%s", prof.Report(10))
	}
	return nil
}

// teeHook fans one parse's hook events out to two hooks — how
// `profile -trace-json` profiles and trace-exports the same parses.
type teeHook struct {
	a, b modpeg.ParseHook
}

func (t teeHook) OnEnter(prod, pos int) { t.a.OnEnter(prod, pos); t.b.OnEnter(prod, pos) }
func (t teeHook) OnExit(prod, pos, end int, ok bool) {
	t.a.OnExit(prod, pos, end, ok)
	t.b.OnExit(prod, pos, end, ok)
}
func (t teeHook) OnMemoHit(prod, pos, end int, ok bool) {
	t.a.OnMemoHit(prod, pos, end, ok)
	t.b.OnMemoHit(prod, pos, end, ok)
}
func (t teeHook) OnFail(prod, pos int) { t.a.OnFail(prod, pos); t.b.OnFail(prod, pos) }

// parseIncremental runs `parse -incremental -edits <script>`: the input
// becomes an editable document, each batch of the edit script is applied
// with an incremental reparse, and the final document's AST (or error)
// is printed exactly as a plain parse would print it. With -stats, one
// statistics line per apply shows the reuse counters.
func parseIncremental(p *modpeg.Parser, name, input, editsPath string, w io.Writer, withStats, indent, asJSON bool) error {
	script, err := os.ReadFile(editsPath)
	if err != nil {
		return err
	}
	batches, err := parseEditScript(string(script))
	if err != nil {
		return err
	}
	d := p.NewDocument(name, input)
	if withStats {
		fmt.Fprintf(w, "parse: %s\n", d.Stats())
	}
	for i, batch := range batches {
		_, stats, err := d.Apply(batch...)
		if err != nil && d.Err() == nil {
			// Rejected edits (parse errors show up as d.Err() instead and
			// are legitimate intermediate states).
			return fmt.Errorf("edit batch %d: %w", i+1, err)
		}
		if withStats {
			outcome := "ok"
			if d.Err() != nil {
				outcome = "syntax error"
			}
			fmt.Fprintf(w, "apply %d (%d edits, %s): %s\n", i+1, len(batch), outcome, stats)
		}
	}
	if d.Err() != nil {
		if pe, ok := d.Err().(*vm.ParseError); ok {
			return fmt.Errorf("%s", pe.Detail())
		}
		return d.Err()
	}
	switch {
	case asJSON:
		out, err := modpeg.ValueToJSON(d.Value())
		if err != nil {
			return err
		}
		fmt.Fprintln(w, out)
	case indent:
		fmt.Fprint(w, modpeg.IndentValue(d.Value()))
	default:
		fmt.Fprintln(w, modpeg.FormatValue(d.Value()))
	}
	return nil
}

// parseEditScript reads the -edits format: one edit per line as
//
//	@<off> <oldLen> ["<replacement>"]
//
// with the replacement in Go string-literal syntax (omitted for pure
// deletions). Offsets are bytes into the text as it stands before the
// line's batch. Consecutive edit lines form one batch applied atomically;
// a blank line ends the batch. Lines starting with # are comments.
func parseEditScript(src string) ([][]modpeg.Edit, error) {
	var batches [][]modpeg.Edit
	var cur []modpeg.Edit
	flush := func() {
		if len(cur) > 0 {
			batches = append(batches, cur)
			cur = nil
		}
	}
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			flush()
			continue
		case strings.HasPrefix(line, "#"):
			continue
		case !strings.HasPrefix(line, "@"):
			return nil, fmt.Errorf("edit script line %d: want '@off oldLen [\"text\"]', got %q", i+1, line)
		}
		rest := strings.TrimSpace(line[1:])
		parts := strings.SplitN(rest, " ", 3)
		if len(parts) < 2 {
			return nil, fmt.Errorf("edit script line %d: want '@off oldLen [\"text\"]', got %q", i+1, line)
		}
		off, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("edit script line %d: bad offset %q", i+1, parts[0])
		}
		oldLen, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("edit script line %d: bad oldLen %q", i+1, parts[1])
		}
		text := ""
		if len(parts) == 3 && strings.TrimSpace(parts[2]) != "" {
			text, err = strconv.Unquote(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("edit script line %d: bad replacement %q: %v", i+1, parts[2], err)
			}
		}
		cur = append(cur, modpeg.Edit{Off: off, OldLen: oldLen, NewLen: len(text), Text: text})
	}
	flush()
	return batches, nil
}

// cmdProfile parses an input repeatedly under the per-production
// profiler and reports the aggregate: the hot-production table (or its
// JSON encoding) whose call counts sum to the engine's Stats.Calls.
func cmdProfile(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	reps := fs.Int("n", 1, "number of repeat parses to aggregate")
	top := fs.Int("top", 0, "limit the table to the top n productions (0 = all active)")
	asJSON := fs.Bool("json", false, "emit the profile as JSON")
	withMetrics := fs.Bool("metrics", false, "also print the engine metrics registry snapshot")
	traceJSON := fs.String("trace-json", "", "also write a Chrome trace-event (Perfetto) JSON file of the profiled parses")
	genKB := fs.Int("gen", 0, "profile a generated synthetic corpus of this many KB instead of reading input")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: modpeg profile [-d dir] [-n reps] [-top n] [-json] [-metrics] [-trace-json file] [-gen kb] <top-module> [file]")
	}
	if *reps < 1 {
		return fmt.Errorf("profile: -n must be at least 1")
	}
	top_ := fs.Arg(0)
	p, err := modpeg.New(top_, moduleOpts(*dir)...)
	if err != nil {
		return err
	}

	name := "<stdin>"
	var input []byte
	switch {
	case *genKB > 0:
		if fs.NArg() == 2 {
			return fmt.Errorf("profile: -gen and a file argument are mutually exclusive")
		}
		text, err := syntheticCorpus(top_, *genKB)
		if err != nil {
			return err
		}
		name = fmt.Sprintf("<generated %dKB>", *genKB)
		input = []byte(text)
	case fs.NArg() == 2:
		name = fs.Arg(1)
		input, err = os.ReadFile(name)
	default:
		input, err = io.ReadAll(stdin)
	}
	if err != nil {
		return err
	}

	profiler := p.NewProfiler()
	var hook modpeg.ParseHook = profiler
	var trace *modpeg.TraceExporter
	if *traceJSON != "" {
		f, ferr := os.Create(*traceJSON)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		trace = p.NewTraceJSON(f)
		hook = teeHook{profiler, trace}
	}
	var stats modpeg.ParseStats
	for i := 0; i < *reps; i++ {
		_, st, err := p.ParseWithHook(name, string(input), hook)
		if err != nil {
			if trace != nil {
				trace.Close()
			}
			if pe, ok := err.(*vm.ParseError); ok {
				return fmt.Errorf("%s", pe.Detail())
			}
			return err
		}
		stats.Add(st)
	}
	if trace != nil {
		if err := trace.Close(); err != nil {
			return err
		}
	}
	total := *profiler.Profile()

	if *asJSON {
		out, err := total.JSON()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, string(out))
	} else {
		fmt.Fprintf(w, "profile: %s, %d parse(s) of %s (%d bytes)\n\n", top_, *reps, name, len(input))
		fmt.Fprint(w, total.Report(*top))
		fmt.Fprintf(w, "\nstats: %s\n", stats)
		if trace != nil {
			fmt.Fprintf(w, "trace: %d events written to %s\n", trace.Events(), *traceJSON)
		}
	}
	if *withMetrics {
		out, err := modpeg.Metrics().JSON()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nengine metrics:\n%s\n", string(out))
	}
	return nil
}

// syntheticCorpus generates a deterministic workload for the bundled
// language families so `modpeg profile -gen` needs no input file.
func syntheticCorpus(top string, kb int) (string, error) {
	cfg := workload.Config{Seed: 7, Size: kb * 1024}
	switch {
	case strings.HasPrefix(top, "java"):
		return workload.JavaProgram(cfg), nil
	case strings.HasPrefix(top, "c."), top == "c":
		return workload.CProgram(cfg), nil
	case strings.HasPrefix(top, "json"):
		return workload.JSONDoc(cfg), nil
	case strings.HasPrefix(top, "calc"):
		return workload.Expression(cfg), nil
	}
	return "", fmt.Errorf("profile: no synthetic workload for module %q (have java*, c*, json*, calc*)", top)
}

func cmdGenerate(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	dir := fs.String("d", "", "module directory")
	pkg := fs.String("pkg", "parser", "generated package name")
	out := fs.String("o", "", "output file (default stdout)")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: modpeg generate [-d dir] [-pkg name] [-o file] <top-module>")
	}
	p, err := modpeg.New(fs.Arg(0), moduleOpts(*dir)...)
	if err != nil {
		return err
	}
	src, err := p.GenerateGo(*pkg)
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = w.Write(src)
		return err
	}
	return os.WriteFile(*out, src, 0o644)
}

func cmdFmt(args []string, stdin io.Reader, w io.Writer) error {
	fs := flag.NewFlagSet("fmt", flag.ContinueOnError)
	write := fs.Bool("w", false, "write the result back to the file")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("usage: modpeg fmt [-w] [file...]")
	}
	if fs.NArg() == 0 {
		data, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		m, err := syntax.ParseString("<stdin>", string(data))
		if err != nil {
			return err
		}
		fmt.Fprint(w, peg.FormatModule(m))
		return nil
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		m, err := syntax.ParseString(path, string(data))
		if err != nil {
			return err
		}
		out := peg.FormatModule(m)
		if *write {
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				return err
			}
			continue
		}
		fmt.Fprint(w, out)
	}
	return nil
}

// cmdServe runs the HTTP parse service until SIGTERM/SIGINT, then
// drains in-flight requests and exits.
func cmdServe(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8317", "listen address")
	dir := fs.String("d", "", "module directory")
	grammarList := fs.String("grammars", "", "comma-separated top modules to serve (default: all bundled)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request parse deadline (0 = unlimited)")
	maxInput := fs.Int("max-input", 4<<20, "per-request input-size limit in bytes (0 = unlimited)")
	maxMemo := fs.Int("max-memo", 64<<20, "per-request memo-table budget in bytes (0 = unlimited)")
	maxDepth := fs.Int("max-depth", 100000, "per-request production-call depth limit (0 = unlimited)")
	strict := fs.Bool("strict", false, "fail requests that hit the memo budget instead of shedding memoization")
	maxBody := fs.Int64("max-body", 0, "request-body cap in bytes (0 = 8 MiB)")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	quiet := fs.Bool("quiet", false, "disable structured request and parse logging")
	registryDir := fs.String("registry-dir", "", "persist uploaded grammar versions in this directory (empty = in-memory registry)")
	engine := fs.String("engine", "optimized", "engine for bundled/module-dir grammars: optimized or compiled (registry uploads choose per grammar)")
	maxTenants := fs.Int("max-tenants", 0, "cap on registry tenant namespaces (0 = 64)")
	sampleEvery := fs.Int("sample-every", 0, "profile 1 in n parses of the statically served grammars (0 = off; registry tenants set their own rate per upload)")
	slowParse := fs.Duration("slow-parse", 0, "flight-recorder latency threshold (0 = 250ms default)")
	flightRecords := fs.Int("flight-records", 0, "flight-recorder ring capacity (0 = 256)")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return fmt.Errorf("usage: modpeg serve [-addr host:port] [-grammars a,b] [-d dir] [-engine name] [-timeout d] [-max-input n] [-max-memo n] [-max-depth n] [-strict] [-max-body n] [-pprof] [-quiet] [-registry-dir dir] [-max-tenants n] [-sample-every n] [-slow-parse d] [-flight-records n]")
	}
	served := modpeg.BundledGrammars()
	if *grammarList != "" {
		served = nil
		for _, g := range strings.Split(*grammarList, ",") {
			if g = strings.TrimSpace(g); g != "" {
				served = append(served, g)
			}
		}
	}
	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	limits := modpeg.Limits{
		MaxInputBytes:    *maxInput,
		MaxMemoBytes:     *maxMemo,
		MaxCallDepth:     *maxDepth,
		MaxParseDuration: *timeout,
		Strict:           *strict,
	}
	reg, err := registry.New(registry.Config{
		Dir:           *registryDir,
		MaxTenants:    *maxTenants,
		DefaultLimits: limits,
		ModuleDir:     *dir,
	})
	if err != nil {
		return err
	}
	s, err := serve.New(serve.Config{
		Grammars:      served,
		Engine:        *engine,
		ModuleDir:     *dir,
		Limits:        limits,
		MaxBodyBytes:  *maxBody,
		Logger:        logger,
		EnablePprof:   *pprofFlag,
		Registry:      reg,
		SampleEvery:   *sampleEvery,
		SlowParse:     *slowParse,
		FlightRecords: *flightRecords,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return s.ListenAndServe(ctx, *addr)
}

// cmdLoadtest drives a serve endpoint with the loadbench capacity
// harness and prints the report. Without -url it spawns an in-process
// server on an ephemeral port (all bundled grammars, serve's default
// limits), so a single command is a self-contained capacity check.
// -min-rps and -max-p99 are regression gates on the gate phase (the
// last SLO-passing phase): a violation is a non-zero exit.
func cmdLoadtest(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	url := fs.String("url", "", "serve endpoint to drive (default: spawn an in-process server)")
	dir := fs.String("d", "", "module directory for the spawned server")
	mode := fs.String("mode", "closed", "load mode: closed | open | ramp")
	workers := fs.Int("workers", 8, "closed-loop workers / open-loop in-flight cap")
	rps := fs.Float64("rps", 0, "open-loop target arrival rate (requests/s)")
	duration := fs.Duration("duration", 10*time.Second, "phase duration")
	rampStart := fs.Float64("ramp-start", 50, "ramp mode: first target RPS")
	rampStep := fs.Float64("ramp-step", 50, "ramp mode: RPS increment per step")
	rampMax := fs.Float64("ramp-max", 1000, "ramp mode: highest target RPS")
	stepDur := fs.Duration("step", 0, "ramp mode: per-step duration (default: -duration)")
	sloP99 := fs.Duration("slo-p99", 50*time.Millisecond, "SLO: p99 latency ceiling (0 disables)")
	sloErr := fs.Float64("slo-errors", 0.001, "SLO: tolerated unexpected-error rate")
	seed := fs.Int64("seed", 1, "corpus shuffle seed")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "unmeasured warmup burst (0 = none)")
	plain := fs.Bool("no-adversarial", false, "drop the adversarial corpus items")
	tenants := fs.Int("tenants", 0, "mixed-tenant mode: register the corpus grammars for n tenants and spread traffic across them (needs a registry-enabled server)")
	omitValues := fs.Bool("omit-values", false, "ask the server to drop ASTs from responses (parse capacity, not transfer capacity)")
	noScrape := fs.Bool("no-scrape", false, "skip the /metrics correlation scrapes")
	jsonOut := fs.String("json", "", "write the LOADTEST.json artifact to this file")
	minRPS := fs.Float64("min-rps", 0, "gate: fail if the gate phase achieved less RPS")
	maxP99 := fs.Duration("max-p99", 0, "gate: fail if the gate phase p99 exceeds this")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		return fmt.Errorf("usage: modpeg loadtest [-url http://host:port] [-d dir] [-mode closed|open|ramp] [-workers n] [-rps r] [-duration d] [-ramp-start r] [-ramp-step r] [-ramp-max r] [-step d] [-slo-p99 d] [-slo-errors f] [-seed n] [-warmup d] [-no-adversarial] [-tenants n] [-omit-values] [-no-scrape] [-json file] [-min-rps r] [-max-p99 d]")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := *url
	if base == "" {
		limits := modpeg.Limits{
			MaxInputBytes:    4 << 20,
			MaxMemoBytes:     64 << 20,
			MaxCallDepth:     100000,
			MaxParseDuration: 5 * time.Second,
		}
		reg, err := registry.New(registry.Config{DefaultLimits: limits, ModuleDir: *dir})
		if err != nil {
			return err
		}
		// The spawned server runs with tail forensics on: a lowered
		// slow-parse threshold so the report's worst_requests section
		// catches the corpus's adversarial tail, and 1-in-100 sampling
		// so those records carry hot-production rows.
		s, err := serve.New(serve.Config{
			ModuleDir:   *dir,
			Limits:      limits,
			Registry:    reg,
			SampleEvery: 100,
			SlowParse:   100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srvCtx, srvStop := context.WithCancel(ctx)
		done := make(chan struct{})
		go func() { s.Serve(srvCtx, ln); close(done) }()
		// The spawned server is disposable: give its graceful drain a
		// moment, but don't hold the report hostage to slow in-flight
		// parses the load generator already abandoned.
		defer func() {
			srvStop()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
			}
		}()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stderr, "loadtest: spawned in-process server at %s\n", base)
	}

	rep, err := loadbench.Run(ctx, loadbench.Config{
		BaseURL:  base,
		Corpus:   loadbench.DefaultCorpus(!*plain),
		Mode:     *mode,
		Workers:  *workers,
		RPS:      *rps,
		Duration: *duration,
		Ramp: loadbench.RampConfig{
			StartRPS: *rampStart, StepRPS: *rampStep, MaxRPS: *rampMax,
			StepDuration: *stepDur,
		},
		SLO:           loadbench.SLO{MaxP99: *sloP99, MaxErrorRate: *sloErr},
		Seed:          *seed,
		OmitValues:    *omitValues,
		Tenants:       *tenants,
		Warmup:        *warmup,
		ScrapeMetrics: !*noScrape,
	})
	if err != nil {
		return err
	}
	if err := rep.WriteText(stdout); err != nil {
		return err
	}
	if *jsonOut != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "loadtest: wrote %s\n", *jsonOut)
	}

	gp := rep.GatePhase()
	if gp == nil {
		return fmt.Errorf("loadtest: no phases completed")
	}
	var gateErrs []string
	if *minRPS > 0 && gp.AchievedRPS < *minRPS {
		gateErrs = append(gateErrs, fmt.Sprintf("achieved %.1f RPS < gate %.1f (phase %s)",
			gp.AchievedRPS, *minRPS, gp.Label))
	}
	if *maxP99 > 0 && gp.P99NS > int64(*maxP99) {
		gateErrs = append(gateErrs, fmt.Sprintf("p99 %s > gate %s (phase %s)",
			time.Duration(gp.P99NS), *maxP99, gp.Label))
	}
	// The SLO verdict is the exit code only in ramp mode, where it
	// drives the saturation search; closed/open runs are measurements,
	// gated solely by the explicit -min-rps / -max-p99 floors.
	if *mode == loadbench.ModeRamp && !rep.Pass {
		gateErrs = append(gateErrs, "SLO verdict: FAIL")
	}
	if len(gateErrs) > 0 {
		return fmt.Errorf("loadtest gates failed: %s", strings.Join(gateErrs, "; "))
	}
	return nil
}

func cmdExperiment(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	kb := fs.Int("kb", 40, "corpus size in KB for throughput experiments")
	minTime := fs.Duration("mintime", 300*time.Millisecond, "measurement window per configuration")
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		return fmt.Errorf("usage: modpeg experiment [-kb n] [-mintime d] <table1..table5|table7..table9|table11|limits|fig1..fig3|hotprods|all>")
	}
	opts := experiments.Options{InputKB: *kb, MinTime: *minTime}
	if fs.Arg(0) == "all" {
		for _, t := range experiments.All(opts) {
			fmt.Fprintln(w, t.Render())
		}
		return nil
	}
	t, err := experiments.ByID(fs.Arg(0), opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, t.Render())
	return nil
}
