// Package modpeg is a parser toolkit for modular parsing expression
// grammars, reproducing the system described in "Better Extensibility
// through Modular Syntax" (Grimm, PLDI 2006): grammars are composed from
// modules that can import, instantiate, and *modify* one another, and are
// executed by an optimizing packrat parser (or compiled to standalone Go
// parsers).
//
// The one-call path:
//
//	parser, err := modpeg.New("calc.full")        // a bundled grammar
//	value, err := parser.Parse("input", "1 + 2**3")
//	fmt.Println(modpeg.FormatValue(value))        // (Add (Num "1") (Pow ...))
//
// Custom grammars come from module directories or in-memory sources:
//
//	parser, err := modpeg.New("my.lang",
//	    modpeg.WithModuleDir("./grammar"),
//	    modpeg.WithModules(map[string]string{"my.ext": extSource}))
//
// Engine and optimizer configurations are exposed for experimentation —
// the benchmark suite uses them to reproduce the paper's measurements:
//
//	parser, err := modpeg.New("java.core",
//	    modpeg.WithOptimizations(modpeg.BaselineOptimizations()),
//	    modpeg.WithEngine(modpeg.EngineNaivePackrat()))
package modpeg

import (
	"context"
	"fmt"
	"io"

	"modpeg/internal/analysis"
	"modpeg/internal/ast"
	"modpeg/internal/codegen"
	"modpeg/internal/core"
	"modpeg/internal/grammars"
	"modpeg/internal/peg"
	"modpeg/internal/telemetry"
	"modpeg/internal/text"
	"modpeg/internal/transform"
	"modpeg/internal/vm"
)

// Value is a semantic value produced by parsing: *Node, *Token, List, or
// nil.
type Value = ast.Value

// Node is a generic interior AST node.
type Node = ast.Node

// Token is a matched lexeme with its source span.
type Token = ast.Token

// List is an ordered sequence of values.
type List = ast.List

// FormatValue renders a value as a compact s-expression.
func FormatValue(v Value) string { return ast.Format(v) }

// IndentValue renders a value as an indented tree.
func IndentValue(v Value) string { return ast.Indent(v) }

// ValueToJSON renders a value as indented JSON for machine consumption.
func ValueToJSON(v Value) (string, error) { return ast.ToJSON(v) }

// ValueToJSONCompact renders a value as single-line JSON. Wire
// protocols must prefer this over ValueToJSON: indented rendering is
// quadratic in the value's nesting depth.
func ValueToJSONCompact(v Value) (string, error) { return ast.ToJSONCompact(v) }

// ValuesEqual reports deep structural equality, ignoring source spans.
func ValuesEqual(a, b Value) bool { return ast.Equal(a, b) }

// FindNode returns the first node with the given constructor name in
// pre-order, or nil.
func FindNode(v Value, name string) *Node { return ast.Find(v, name) }

// FindAllNodes returns every node with the given constructor name.
func FindAllNodes(v Value, name string) []*Node { return ast.FindAll(v, name) }

// TextOf concatenates the terminal text under a value.
func TextOf(v Value) string { return ast.TextOf(v) }

// Resolver maps module names to sources; see WithResolver.
type Resolver = core.Resolver

// OptimizeOptions selects grammar-level optimization passes.
type OptimizeOptions = transform.Options

// DefaultOptimizations is the full optimizing pipeline.
func DefaultOptimizations() OptimizeOptions { return transform.Defaults() }

// BaselineOptimizations is the naive-packrat baseline pipeline (left
// recursion transformed, repetitions expanded into memoized productions,
// nothing else).
func BaselineOptimizations() OptimizeOptions { return transform.Baseline() }

// EngineOptions selects the parse-engine configuration.
type EngineOptions = vm.Options

// EngineOptimized is the paper's full engine: chunked memoization,
// transient skip, first-byte dispatch.
func EngineOptimized() EngineOptions { return vm.Optimized() }

// EngineCompiled is the optimized engine lowered to specialized Go
// closures at Compile time: terminals, sequences, choices, and memo
// probes become direct code instead of interpreted instructions. No Go
// toolchain is needed at runtime (that offline path is `modpeg gen`),
// so hot-reloaded registry grammars can use it too. Sessions, limits,
// incremental reparse, and statistics behave identically to
// EngineOptimized; only the execution strategy differs.
func EngineCompiled() EngineOptions { return vm.CompiledEngine() }

// EngineByName maps a user-facing engine name ("optimized", "compiled",
// "naive-packrat", "backtracking") to its configuration — the lookup
// behind `modpeg parse -engine` and the serve/registry engine fields.
func EngineByName(name string) (EngineOptions, error) {
	switch name {
	case "", "optimized":
		return EngineOptimized(), nil
	case "compiled":
		return EngineCompiled(), nil
	case "naive-packrat":
		return EngineNaivePackrat(), nil
	case "backtracking":
		return EngineBacktracking(), nil
	}
	return EngineOptions{}, fmt.Errorf("unknown engine %q (want optimized, compiled, naive-packrat, or backtracking)", name)
}

// EngineNaivePackrat memoizes every production in a hash map.
func EngineNaivePackrat() EngineOptions { return vm.NaivePackrat() }

// EngineBacktracking is plain recursive descent without memoization.
func EngineBacktracking() EngineOptions { return vm.Backtracking() }

// PGO configures profile-guided inlining (EngineOptions.PGO): small
// productions the profile shows to be hot are expanded at their call
// sites and their memo columns dropped. The zero value inlines every
// small production (static PGO, no profile needed).
type PGO = vm.PGO

// LoadPGO decodes a profile report (the JSON from `modpeg profile
// -json` or Profile.JSON) into a PGO configuration for EngineOptions.
func LoadPGO(data []byte) (*PGO, error) { return vm.LoadPGO(data) }

// ParseStats reports per-parse engine activity.
type ParseStats = vm.Stats

// Profile is a per-production execution profile: calls, memo behaviour,
// dispatch skips, self/cumulative time, farthest position, backtracked
// bytes. Profiles aggregate with Add and render with Report or JSON.
type Profile = vm.Profile

// ProdProfile is one production's slice of a Profile.
type ProdProfile = vm.ProdProfile

// Profiler is the profiling ParseHook: install one on any number of
// parses (Parser.NewProfiler, then ParseWithHook) and snapshot the
// aggregate with its Profile method.
type Profiler = vm.Profiler

// ParseHook receives parse events (production entry/exit, memo hits,
// dispatch skips) synchronously from the engine; see vm.Hook for the
// contract. The built-in trace and profiler are hook implementations.
type ParseHook = vm.Hook

// EngineMetrics is a point-in-time snapshot of the process-wide engine
// metrics registry: parses started/completed/failed, session-pool and
// arena activity, and the peak memo footprint. Encode it with JSON for
// scraping.
type EngineMetrics = vm.MetricsSnapshot

// Metrics snapshots the process-wide engine metrics registry.
func Metrics() EngineMetrics { return vm.Metrics() }

// ResetMetrics zeroes the process-wide engine metrics registry (for
// tests and windowed scraping).
func ResetMetrics() { vm.ResetMetrics() }

// HistogramSnapshot is a point-in-time copy of one of the registry's
// fixed-bucket histograms (parse latency in nanoseconds, input size in
// bytes): total count, sum, and cumulative buckets.
type HistogramSnapshot = vm.HistogramSnapshot

// HistogramBucket is one cumulative histogram bucket.
type HistogramBucket = vm.HistogramBucket

// GrammarCounters is one grammar label's slice of the metrics
// registry: parses started/completed/failed, limit stops, and input
// bytes, labeled by the parser's top module.
type GrammarCounters = vm.GrammarCounters

// SetTelemetry enables or disables per-parse telemetry recording (the
// registry histograms and per-grammar counters; on by default) and
// returns the previous setting. The recording path is allocation-free
// either way — the toggle exists for overhead ablations.
func SetTelemetry(on bool) bool { return vm.SetTelemetry(on) }

// TelemetryEnabled reports whether per-parse telemetry recording is on.
func TelemetryEnabled() bool { return vm.TelemetryEnabled() }

// WritePrometheus renders an engine metrics snapshot in Prometheus text
// exposition format v0.0.4, histograms and per-grammar counters
// included. `modpeg serve` exposes the live registry this way on
// GET /metrics.
func WritePrometheus(w io.Writer, m EngineMetrics) error {
	return telemetry.WritePrometheus(w, m)
}

// TraceExporter is a ParseHook streaming Chrome trace-event JSON — a
// timeline of production spans, memo hits, and memo sheds loadable in
// Perfetto or chrome://tracing. Create one with Parser.NewTraceJSON,
// install it with ParseWithHook, and Close it when done.
type TraceExporter = telemetry.Trace

// NewTraceJSON creates a trace-event exporter for this parser's
// productions, streaming JSON to w.
func (p *Parser) NewTraceJSON(w io.Writer) *TraceExporter {
	return telemetry.NewTrace(p.prog, w)
}

// Limits bounds one parse: input size, memo-table footprint, call
// depth, and wall-clock time (see vm.Limits for the per-field
// contract). The zero value is unlimited. When the memo budget is hit
// the engine degrades gracefully — it sheds memoization and finishes
// the parse in bounded space — unless Strict is set, which turns the
// budget hit into a hard *LimitError.
type Limits = vm.Limits

// LimitError reports a parse stopped by a resource budget or a
// canceled context: which budget, the configured limit, the observed
// value, and the input position reached. It unwraps to
// context.Canceled / context.DeadlineExceeded when a context stopped
// the parse.
type LimitError = vm.LimitError

// LimitKind names the budget a governed parse exhausted.
type LimitKind = vm.LimitKind

// ParseError describes a failed parse with the farthest-failure
// heuristic: the position the parser got stuck at and the
// terminals/productions it tried there.
type ParseError = vm.ParseError

// The budget kinds a *LimitError reports.
const (
	LimitInput    = vm.LimitInput
	LimitMemo     = vm.LimitMemo
	LimitDepth    = vm.LimitDepth
	LimitTime     = vm.LimitTime
	LimitCanceled = vm.LimitCanceled
)

// EngineError reports an interpreter panic contained by the governance
// layer: governed parses convert engine (or hook) panics into this
// error instead of unwinding into the caller.
type EngineError = vm.EngineError

// ShedParseHook is the optional ParseHook extension notified when a
// governed parse sheds memoization on hitting its memo budget.
type ShedParseHook = vm.ShedHook

// GrammarStats summarizes a composed grammar.
type GrammarStats = peg.GrammarStats

// BundledGrammars lists the top modules bundled with the library
// (calculator, JSON, Java subset, C subset, and composition demos).
func BundledGrammars() []string { return grammars.TopModules() }

// config collects option state.
type config struct {
	resolvers core.MultiResolver
	noBundled bool
	optimize  OptimizeOptions
	engine    EngineOptions
	skipOpt   bool
	root      string
}

// Option configures New.
type Option func(*config)

// WithModuleDir resolves modules from "<dir>/<module>.mpeg" files, taking
// precedence over the bundled grammars.
func WithModuleDir(dir string) Option {
	return func(c *config) { c.resolvers = append(c.resolvers, core.DirResolver{Dir: dir}) }
}

// WithModules resolves modules from in-memory sources, taking precedence
// over the bundled grammars.
func WithModules(mods map[string]string) Option {
	return func(c *config) { c.resolvers = append(c.resolvers, core.MapResolver(mods)) }
}

// WithResolver adds a custom module resolver.
func WithResolver(r Resolver) Option {
	return func(c *config) { c.resolvers = append(c.resolvers, r) }
}

// WithoutBundledGrammars removes the bundled modules from resolution.
func WithoutBundledGrammars() Option {
	return func(c *config) { c.noBundled = true }
}

// WithOptimizations overrides the grammar-optimization pipeline.
func WithOptimizations(o OptimizeOptions) Option {
	return func(c *config) { c.optimize = o; c.skipOpt = false }
}

// WithEngine overrides the engine configuration.
func WithEngine(e EngineOptions) Option {
	return func(c *config) { c.engine = e }
}

// WithRoot overrides the composed grammar's root with the named
// production (fully qualified, e.g. "calc.core.Sum"), so the parser
// accepts that production's language instead of the module's declared
// root. The optimization pipeline then prunes relative to the new root.
// `modpeg serve` uses this for per-request entry productions.
func WithRoot(production string) Option {
	return func(c *config) { c.root = production }
}

// Parser is a composed, optimized, compiled grammar ready to parse.
type Parser struct {
	top         string
	composed    *peg.Grammar
	transformed *peg.Grammar
	report      *transform.Report
	prog        *vm.Program
}

// New composes the grammar rooted at the given top module, applies the
// optimization pipeline, and compiles it for the configured engine.
func New(top string, opts ...Option) (*Parser, error) {
	c := &config{optimize: transform.Defaults(), engine: vm.Optimized()}
	for _, o := range opts {
		o(c)
	}
	resolver := c.resolvers
	if !c.noBundled {
		resolver = append(resolver, grammars.Resolver())
	}
	if len(resolver) == 0 {
		return nil, fmt.Errorf("modpeg: no module sources configured")
	}
	composed, err := core.Compose(top, resolver)
	if err != nil {
		return nil, err
	}
	if c.root != "" {
		if _, ok := composed.Prods[c.root]; !ok {
			return nil, fmt.Errorf("modpeg: root production %q not found in grammar %q", c.root, top)
		}
		composed.Root = c.root
	}
	transformed, report, err := transform.Apply(composed, c.optimize)
	if err != nil {
		return nil, err
	}
	prog, err := vm.Compile(transformed, c.engine)
	if err != nil {
		return nil, err
	}
	prog.SetLabel(top)
	return &Parser{
		top:         top,
		composed:    composed,
		transformed: transformed,
		report:      report,
		prog:        prog,
	}, nil
}

// Parse parses input (name labels it in diagnostics), requiring the root
// production to consume the whole input.
//
// Parse draws a pooled parse session internally, so calling it in a hot
// loop reaches a steady state with no parser-machinery allocations. It is
// safe to call concurrently from multiple goroutines; every call works on
// its own session.
func (p *Parser) Parse(name, input string) (Value, error) {
	v, _, err := p.prog.Parse(text.NewSource(name, input))
	return v, err
}

// ParseContext is Parse under a context and resource budgets: the
// parse stops with a typed *LimitError when ctx is canceled, a deadline
// (ctx's or lim.MaxParseDuration's, whichever is sooner) passes, or a
// budget in lim is exhausted. Passing context.Background() and zero
// Limits behaves exactly like Parse, including the pooled
// zero-allocation steady state.
func (p *Parser) ParseContext(ctx context.Context, name, input string, lim Limits) (Value, error) {
	v, _, err := p.prog.ParseContext(ctx, text.NewSource(name, input), lim)
	return v, err
}

// ParseContextWithStats is ParseContext plus the engine statistics of
// the run — the entry point a parse service uses: pooled, governed, and
// reporting what the parse cost.
func (p *Parser) ParseContextWithStats(ctx context.Context, name, input string, lim Limits) (Value, ParseStats, error) {
	return p.prog.ParseContext(ctx, text.NewSource(name, input), lim)
}

// ParseContextWithHook is ParseContext with h receiving the run's parse
// events — governance and instrumentation on the same pooled parse.
func (p *Parser) ParseContextWithHook(ctx context.Context, name, input string, lim Limits, h ParseHook) (Value, ParseStats, error) {
	return p.prog.ParseContextWithHook(ctx, text.NewSource(name, input), lim, h)
}

// ParseContextTraced is ParseContextWithStats carrying a W3C trace ID:
// the parse's latency observation records (trace ID, grammar label,
// duration) as an exemplar on the histogram bucket it lands in, so
// tail-bucket scrapes carry real trace IDs. An empty traceID makes
// this exactly ParseContextWithStats, zero-allocation steady state
// included.
func (p *Parser) ParseContextTraced(ctx context.Context, name, input string, lim Limits, traceID string) (Value, ParseStats, error) {
	return p.prog.ParseContextTraced(ctx, text.NewSource(name, input), lim, traceID)
}

// ParseContextTracedWithHook is ParseContextWithHook carrying a W3C
// trace ID; when h also implements TraceContextParseHook it receives
// the ID before any parse event (the Chrome-trace exporter stamps its
// timeline with it).
func (p *Parser) ParseContextTracedWithHook(ctx context.Context, name, input string, lim Limits, traceID string, h ParseHook) (Value, ParseStats, error) {
	return p.prog.ParseContextTracedWithHook(ctx, text.NewSource(name, input), lim, traceID, h)
}

// TraceContextParseHook is the optional ParseHook extension that
// receives a traced parse's W3C trace ID before its first event.
type TraceContextParseHook = vm.TraceContextHook

// Exemplar is one traced observation pinned to a latency-histogram
// bucket: trace ID, grammar label, observed value, and record time.
type Exemplar = vm.Exemplar

// SampledProfile is one grammar label's rolling 1-in-N sampled
// profile (see Parser.SetSampling): sampled-parse count plus
// aggregated per-production rows, hottest first.
type SampledProfile = vm.SampledProfile

// SetSampling sets this parser's always-on profiling sample rate:
// every n-th pooled parse runs with a borrowed profiler and folds into
// the grammar label's rolling SampledProfile. n <= 0 (the default)
// disables sampling; the disabled path costs one atomic load per
// parse and keeps the zero-allocation steady state. Sampled parses run
// the interpreter (the hook seam), so keep n large enough that 1/n of
// traffic on the slower path is acceptable — 100 keeps the measured
// end-to-end overhead under 2%.
func (p *Parser) SetSampling(n int) { p.prog.SetSampling(n) }

// Sampling returns the parser's current sample rate (0 = off).
func (p *Parser) Sampling() int { return p.prog.Sampling() }

// SampledProfiles snapshots every grammar label's rolling sampled
// profile, sorted by label.
func SampledProfiles() []SampledProfile { return vm.SampledProfiles() }

// SampledProfileFor snapshots one grammar label's rolling sampled
// profile; ok is false when the label has never been sampled.
func SampledProfileFor(label string) (SampledProfile, bool) { return vm.SampledProfileFor(label) }

// ResetSampledProfiles drops every rolling sampled profile (windowed
// scraping; ResetMetrics leaves them alone).
func ResetSampledProfiles() { vm.ResetSampledProfiles() }

// Label returns the grammar label this parser's parses are counted
// under in the metrics registry (the top module name); SetLabel
// overrides it.
func (p *Parser) Label() string { return p.prog.Label() }

// SetLabel changes the grammar label for the metrics registry's
// per-grammar counters and the Prometheus `grammar` label.
func (p *Parser) SetLabel(label string) { p.prog.SetLabel(label) }

// Session is an explicitly managed, reusable parse context: the memo
// table's storage and the engine's scratch buffers survive from parse to
// parse, so a session parsing many inputs in sequence performs zero
// parser-machinery allocations at steady state. Results are identical to
// Parser.Parse — the recycled state is never consulted across inputs.
//
// A Session must not be used from more than one goroutine at a time;
// create one per goroutine (or use ParseBatch, which does).
type Session struct {
	s *vm.Session
}

// NewSession creates a reusable parse session for the parser's compiled
// program.
func (p *Parser) NewSession() *Session {
	return &Session{s: p.prog.NewSession()}
}

// Parse is Parser.Parse on the reusable session context.
func (s *Session) Parse(name, input string) (Value, error) {
	v, _, err := s.s.Parse(text.NewSource(name, input))
	return v, err
}

// ParseWithStats is Parse plus the engine statistics of the run.
func (s *Session) ParseWithStats(name, input string) (Value, ParseStats, error) {
	return s.s.Parse(text.NewSource(name, input))
}

// ParseContext is Parser.ParseContext on the reusable session context,
// returning the run's engine statistics alongside the value (a
// memo-shedding run reports its bounded footprint in Stats.MemoBytes
// and the shed in Stats.MemoSheds).
func (s *Session) ParseContext(ctx context.Context, name, input string, lim Limits) (Value, ParseStats, error) {
	return s.s.ParseContext(ctx, text.NewSource(name, input), lim)
}

// ParseWithProfile is Parse plus the engine statistics and a
// per-production profile of the run. To aggregate across a session's
// parses instead, install one Parser.NewProfiler via ParseWithHook.
func (s *Session) ParseWithProfile(name, input string) (Value, ParseStats, *Profile, error) {
	return s.s.ParseWithProfile(text.NewSource(name, input))
}

// ParseWithHook is Parse with h receiving the run's parse events. The
// same hook may serve consecutive parses to aggregate across them.
func (s *Session) ParseWithHook(name, input string, h ParseHook) (Value, ParseStats, error) {
	return s.s.ParseWithHook(text.NewSource(name, input), h)
}

// Edit describes one textual change to a Document: the OldLen bytes at
// Off (pre-edit coordinates) are replaced by Text, whose length must
// equal NewLen. Insertions have OldLen 0, deletions NewLen 0. Edits in
// one Apply batch must not overlap.
type Edit = vm.Edit

// Document owns a source text and the memo state of its last parse, and
// reparses incrementally as the text is edited: after a small edit, memo
// entries untouched by the damage are reused (entries past the edit are
// relocated by remapping the memo chunk directory, not rewritten), so a
// reparse costs in proportion to the edit rather than the document. The
// results are indistinguishable from a from-scratch parse of the current
// text — values compare equal and errors are reported identically (a
// failed incremental pass is re-reported from a full reparse) — except
// that reused subtrees keep the source spans of the revision that first
// parsed them.
//
// A Document is an editor-session object: it is not safe for concurrent
// use and holds a dedicated parse session (with its memo arenas) alive
// for its lifetime. Reuse requires the optimized chunked engine (the
// default); under other engine configurations Apply transparently
// reparses from scratch.
type Document struct {
	d *vm.Document
}

// NewDocument parses input (name labels it in diagnostics) and returns a
// Document holding the result and the parse's memo state. A document
// whose text does not currently parse is still editable — that is the
// normal state mid-edit; the initial outcome is available via Value,
// Stats, and Err.
func (p *Parser) NewDocument(name, input string) *Document {
	return &Document{d: p.prog.NewDocument(text.NewSource(name, input))}
}

// Apply applies the edits to the document text and reparses
// incrementally. It returns the new value, the reparse's statistics
// (MemoReused, MemoInvalidated, and MemoRelocated describe the memo
// reuse; MemoBytes reports the whole live table), and the parse error if
// the edited text does not parse. Invalid edits (out of bounds,
// overlapping, or NewLen ≠ len(Text)) leave the document untouched and
// return an error.
func (d *Document) Apply(edits ...Edit) (Value, ParseStats, error) {
	return d.d.Apply(edits...)
}

// Value returns the semantic value of the last (re)parse, nil if it
// failed.
func (d *Document) Value() Value { return d.d.Value() }

// Stats returns the statistics of the last (re)parse.
func (d *Document) Stats() ParseStats { return d.d.Stats() }

// Err returns the last (re)parse's error, nil if it succeeded.
func (d *Document) Err() error { return d.d.Err() }

// Text returns the document's current content.
func (d *Document) Text() string { return d.d.Text() }

// BatchResult is the outcome of one input of a ParseBatch call.
type BatchResult = vm.Result

// ParseBatch parses every input concurrently across at most workers
// goroutines (GOMAXPROCS when workers <= 0), each running its own pooled
// parse session. The result slice is order-preserving: result[i] is the
// outcome of inputs[i] — value, per-input statistics, and error —
// regardless of which worker parsed it or when it finished. Input i is
// labelled "name[i]" in diagnostics.
func (p *Parser) ParseBatch(name string, inputs []string, workers int) []BatchResult {
	srcs := make([]*text.Source, len(inputs))
	for i, in := range inputs {
		srcs[i] = text.NewSource(fmt.Sprintf("%s[%d]", name, i), in)
	}
	return p.prog.ParseAll(srcs, workers)
}

// ParseBatchContext is ParseBatch under a context and per-input
// resource budgets: each input is parsed under lim, and cancellation
// drains the batch promptly — in-flight parses abort on their next
// governance poll and unstarted inputs are marked with a *LimitError
// without being parsed. Every result slot is filled either way.
func (p *Parser) ParseBatchContext(ctx context.Context, name string, inputs []string, workers int, lim Limits) []BatchResult {
	srcs := make([]*text.Source, len(inputs))
	for i, in := range inputs {
		srcs[i] = text.NewSource(fmt.Sprintf("%s[%d]", name, i), in)
	}
	return p.prog.ParseAllContext(ctx, srcs, workers, lim)
}

// BatchStats aggregates the per-input statistics of a batch.
func BatchStats(results []BatchResult) ParseStats { return vm.TotalStats(results) }

// ParseWithStats is Parse plus the engine statistics of the run.
func (p *Parser) ParseWithStats(name, input string) (Value, ParseStats, error) {
	return p.prog.Parse(text.NewSource(name, input))
}

// ParseWithProfile is Parse plus the engine statistics and a
// per-production profile of the run. Profiling reads the clock on every
// production entry and exit; use Parse when the numbers aren't wanted.
func (p *Parser) ParseWithProfile(name, input string) (Value, ParseStats, *Profile, error) {
	return p.prog.ParseWithProfile(text.NewSource(name, input))
}

// ParseWithHook is Parse with h receiving the run's parse events.
func (p *Parser) ParseWithHook(name, input string, h ParseHook) (Value, ParseStats, error) {
	return p.prog.ParseWithHook(text.NewSource(name, input), h)
}

// NewProfiler returns a reusable profiling hook for this parser's
// productions: install it with ParseWithHook on any number of parses
// (one goroutine at a time) and snapshot the aggregate with Profile.
func (p *Parser) NewProfiler() *Profiler { return p.prog.NewProfiler() }

// ParseBatchProfiled is ParseBatch plus one profile aggregated across
// all workers' parses.
func (p *Parser) ParseBatchProfiled(name string, inputs []string, workers int) ([]BatchResult, *Profile) {
	srcs := make([]*text.Source, len(inputs))
	for i, in := range inputs {
		srcs[i] = text.NewSource(fmt.Sprintf("%s[%d]", name, i), in)
	}
	return p.prog.ParseAllProfiled(srcs, workers)
}

// ParseWithTrace is Parse with a human-readable production-call trace
// streamed to w — the grammar-debugging aid.
func (p *Parser) ParseWithTrace(name, input string, w io.Writer) (Value, error) {
	v, _, err := p.prog.ParseWithTrace(text.NewSource(name, input), w)
	return v, err
}

// Top returns the top module name the parser was composed from.
func (p *Parser) Top() string { return p.top }

// Grammar renders the composed (pre-optimization) grammar.
func (p *Parser) Grammar() string { return peg.FormatGrammar(p.composed) }

// OptimizedGrammar renders the grammar after the optimization pipeline.
func (p *Parser) OptimizedGrammar() string { return peg.FormatGrammar(p.transformed) }

// Stats summarizes the composed grammar.
func (p *Parser) Stats() GrammarStats { return peg.StatsOfGrammar(p.composed) }

// OptimizedStats summarizes the grammar after optimization.
func (p *Parser) OptimizedStats() GrammarStats { return peg.StatsOfGrammar(p.transformed) }

// OptimizationReport describes what each optimization pass did.
func (p *Parser) OptimizationReport() string { return p.report.String() }

// Modules lists the composed module instances in dependency order.
func (p *Parser) Modules() []string {
	return append([]string(nil), p.composed.ModuleNames...)
}

// GenerateGo emits a standalone Go parser for the grammar (the
// parser-generator path). pkg is the generated package name.
func (p *Parser) GenerateGo(pkg string) ([]byte, error) {
	return codegen.Generate(p.transformed, codegen.Options{
		Package:      pkg,
		EntryComment: "grammar: " + p.top,
	})
}

// Check re-runs the static well-formedness analysis on the composed
// grammar and returns its findings (nil when clean).
func (p *Parser) Check() error {
	return analysis.Analyze(p.composed).Check()
}

// Lint reports non-fatal grammar smells (unreachable productions,
// contradictory attributes, shadowed literal alternatives, discarded
// bindings), sorted and deterministic.
func (p *Parser) Lint() []string {
	return analysis.Analyze(p.composed).Lint()
}
