// Extend: the paper's headline capability — extend a language you did
// not write, from the outside, with a module of your own.
//
// This example adds two constructs to the bundled calculator without
// touching its source: a postfix factorial operator and an absolute-value
// atom |e|. Each lives in its own module; both compose with the base
// grammar (and with each other) through labeled anchors.
//
// Run with:
//
//	go run ./examples/extend
package main

import (
	"fmt"
	"log"
	"strconv"

	"modpeg"
)

// factorialModule adds "n!" at the Factor extension point.
const factorialModule = `
module user.factorial;

modify calc.core;
import calc.lex;

Factor += <fact> e:Atom BANG @Fact before <atom> ;

void BANG = "!" Spacing ;
`

// absModule adds |e| as a new kind of atom.
const absModule = `
module user.abs;

modify calc.core;
import calc.lex;

Atom += <abs> BAR e:Sum BAR @Abs before <num> ;

void BAR = "|" Spacing ;
`

// top composes the base calculator with both user extensions.
const topModule = `
module user.top;

import calc.core;
import user.factorial;
import user.abs;
option root = calc.core.Program;
`

func main() {
	base, err := modpeg.New("calc.core")
	if err != nil {
		log.Fatal(err)
	}
	extended, err := modpeg.New("user.top", modpeg.WithModules(map[string]string{
		"user.top":       topModule,
		"user.factorial": factorialModule,
		"user.abs":       absModule,
	}))
	if err != nil {
		log.Fatal(err)
	}

	inputs := []string{
		"5! - 100",
		"|3 - 10| * 2",
		"(3! + |1 - 3|)!",
	}
	for _, input := range inputs {
		if _, err := base.Parse("in", input); err == nil {
			log.Fatalf("base grammar unexpectedly accepted %q", input)
		}
		v, err := extended.Parse("in", input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s => %-40s = %v\n", input, modpeg.FormatValue(v), eval(v))
	}

	fmt.Println("\ncomposed modules:")
	for _, m := range extended.Modules() {
		fmt.Println("  ", m)
	}
}

func eval(v modpeg.Value) float64 {
	switch n := v.(type) {
	case *modpeg.Node:
		switch n.Name {
		case "Num":
			f, _ := strconv.ParseFloat(modpeg.TextOf(n), 64)
			return f
		case "Add":
			return eval(n.Child(0)) + eval(n.Child(1))
		case "Sub":
			return eval(n.Child(0)) - eval(n.Child(1))
		case "Mul":
			return eval(n.Child(0)) * eval(n.Child(1))
		case "Div":
			return eval(n.Child(0)) / eval(n.Child(1))
		case "Fact":
			f := 1.0
			for i := 2; i <= int(eval(n.Child(0))); i++ {
				f *= float64(i)
			}
			return f
		case "Abs":
			x := eval(n.Child(0))
			if x < 0 {
				return -x
			}
			return x
		}
	}
	return 0
}
