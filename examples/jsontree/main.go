// Jsontree: use the bundled JSON grammar as a real parser — decode the
// generic AST into Go values (map[string]any, []any, float64, string,
// bool, nil) and pretty-print them.
//
// Run with:
//
//	go run ./examples/jsontree
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"modpeg"
)

const doc = `
{
  "name": "modpeg",
  "kind": "parser toolkit",
  "stable": true,
  "version": 0.1,
  "tags": ["peg", "packrat", "modular"],
  "limits": {"maxDepth": 1024, "strict": null}
}
`

func main() {
	parser, err := modpeg.New("json.value")
	if err != nil {
		log.Fatal(err)
	}
	value, stats, err := parser.ParseWithStats("doc.json", doc)
	if err != nil {
		log.Fatal(err)
	}
	decoded := decode(value)
	dump(decoded, 0)
	fmt.Printf("\nengine: %s\n", stats)
}

// decode converts the grammar's generic AST into plain Go values. The
// node names (Obj, Arr, Member, Str, Num, True, False, Null) come from
// the @Ctor annotations in json.value.mpeg.
func decode(v modpeg.Value) any {
	n, ok := v.(*modpeg.Node)
	if !ok {
		return nil
	}
	switch n.Name {
	case "Obj":
		m := map[string]any{}
		if n.NumChildren() == 1 { // (Obj (Members head tail))
			members := n.Child(0).(*modpeg.Node)
			for _, mem := range collect(members) {
				key := unquote(modpeg.TextOf(mem.Child(0)))
				m[key] = decode(mem.Child(1))
			}
		}
		return m
	case "Arr":
		var out []any
		if n.NumChildren() == 1 {
			elems := n.Child(0).(*modpeg.Node)
			head := elems.Child(0)
			out = append(out, decode(head))
			if tail, ok := elems.Child(1).(modpeg.List); ok {
				for _, e := range tail {
					out = append(out, decode(e))
				}
			}
		}
		return out
	case "Str":
		return unquote(modpeg.TextOf(n))
	case "Num":
		f, _ := strconv.ParseFloat(modpeg.TextOf(n), 64)
		return f
	case "True":
		return true
	case "False":
		return false
	case "Null":
		return nil
	}
	return nil
}

// collect flattens a Members node (head plus a list of tails) into the
// member nodes.
func collect(members *modpeg.Node) []*modpeg.Node {
	out := []*modpeg.Node{members.Child(0).(*modpeg.Node)}
	if tail, ok := members.Child(1).(modpeg.List); ok {
		for _, t := range tail {
			out = append(out, t.(*modpeg.Node))
		}
	}
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\\`, `\`)
	return s
}

func dump(v any, depth int) {
	pad := strings.Repeat("  ", depth)
	switch v := v.(type) {
	case map[string]any:
		fmt.Println(pad + "{")
		// Stable order for display.
		var keys []string
		for k := range v {
			keys = append(keys, k)
		}
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[j] < keys[i] {
					keys[i], keys[j] = keys[j], keys[i]
				}
			}
		}
		for _, k := range keys {
			fmt.Printf("%s  %q:\n", pad, k)
			dump(v[k], depth+2)
		}
		fmt.Println(pad + "}")
	case []any:
		fmt.Println(pad + "[")
		for _, e := range v {
			dump(e, depth+1)
		}
		fmt.Println(pad + "]")
	default:
		fmt.Printf("%s%#v\n", pad, v)
	}
}
