// Quickstart: compose the bundled calculator grammar, parse an
// expression, inspect the AST, and evaluate it by walking the generic
// nodes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"

	"modpeg"
)

func main() {
	// calc.full composes the base calculator with the ** and comparison
	// extension modules.
	parser, err := modpeg.New("calc.full")
	if err != nil {
		log.Fatal(err)
	}

	for _, input := range []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"2 ** 10 - 24",
		"2 ** 3 ** 2",
		"7 * 6 < 43",
	} {
		value, err := parser.Parse("quickstart", input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s => %-55s = %v\n", input, modpeg.FormatValue(value), eval(value))
	}

	// Syntax errors come with positions and expectations.
	if _, err := parser.Parse("quickstart", "1 + * 2"); err != nil {
		fmt.Printf("\nerror example: %v\n", err)
	}
}

// eval interprets the calculator's generic AST. Node names come from the
// @Ctor annotations in the grammar modules — including the Pow and Lt
// constructors contributed by extension modules.
func eval(v modpeg.Value) float64 {
	switch n := v.(type) {
	case *modpeg.Node:
		switch n.Name {
		case "Num":
			f, _ := strconv.ParseFloat(modpeg.TextOf(n), 64)
			return f
		case "Add":
			return eval(n.Child(0)) + eval(n.Child(1))
		case "Sub":
			return eval(n.Child(0)) - eval(n.Child(1))
		case "Mul":
			return eval(n.Child(0)) * eval(n.Child(1))
		case "Div":
			return eval(n.Child(0)) / eval(n.Child(1))
		case "Pow":
			return pow(eval(n.Child(0)), eval(n.Child(1)))
		case "Lt":
			return boolVal(eval(n.Child(0)) < eval(n.Child(1)))
		case "Gt":
			return boolVal(eval(n.Child(0)) > eval(n.Child(1)))
		}
	}
	return 0
}

func pow(base, exp float64) float64 {
	result := 1.0
	for i := 0; i < int(exp); i++ {
		result *= base
	}
	return result
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
