// Multilang: language composition across author boundaries — the paper's
// motivating scenario. The bundled demo.javasql module embeds the SQL
// grammar into Java expressions: a backquoted query is parsed by the SQL
// grammar, in the same pass, by the same engine, producing one mixed AST.
//
// This example parses a Java class containing embedded queries, then
// walks the combined tree to extract every query with its table, columns,
// and conditions — the kind of static analysis single-language parsers
// cannot do.
//
// Run with:
//
//	go run ./examples/multilang
package main

import (
	"fmt"
	"log"

	"modpeg"
)

const source = `
package com.example.reports;

public class ReportDao {
    java.sql.ResultSet adults() {
        return run(` + "`SELECT name, age FROM users WHERE age >= 18`" + `);
    }

    java.sql.ResultSet everything() {
        return run(` + "`SELECT * FROM audit_log`" + `);
    }

    int threshold() {
        return 18;
    }

    java.sql.ResultSet filtered(int lo) {
        return run(` + "`SELECT id FROM events WHERE kind = 'login' AND severity > 3`" + `);
    }
}
`

func main() {
	parser, err := modpeg.New("demo.javasql.top")
	if err != nil {
		log.Fatal(err)
	}
	tree, err := parser.Parse("ReportDao.java", source)
	if err != nil {
		log.Fatal(err)
	}

	methods := modpeg.FindAllNodes(tree, "Method")
	fmt.Printf("parsed one file, two languages: %d methods\n\n", len(methods))

	for _, q := range modpeg.FindAllNodes(tree, "Select") {
		fmt.Println("embedded query:")
		if cols := modpeg.FindNode(q, "Columns"); cols != nil {
			fmt.Print("  columns:")
			for _, c := range modpeg.FindAllNodes(cols, "Name") {
				fmt.Printf(" %s", modpeg.TextOf(c))
			}
			fmt.Println()
		} else if modpeg.FindNode(q, "AllColumns") != nil {
			fmt.Println("  columns: *")
		}
		// The table is the Name child of the Select node itself.
		if tbl, ok := q.Child(1).(*modpeg.Node); ok {
			fmt.Printf("  table:   %s\n", modpeg.TextOf(tbl))
		}
		for _, cmp := range modpeg.FindAllNodes(q, "Cmp") {
			fmt.Printf("  where:   %s %s %s\n",
				modpeg.TextOf(cmp.Child(0)), modpeg.TextOf(cmp.Child(1)), modpeg.TextOf(cmp.Child(2)))
		}
		fmt.Println()
	}
}
