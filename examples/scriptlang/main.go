// Scriptlang: build a complete little language with modpeg — grammar
// modules, one extension, and a tree-walking interpreter over the generic
// AST. This is the "language laboratory" workflow the paper enables:
// the language definition is data, split into modules, extended without
// touching the base.
//
// Run with:
//
//	go run ./examples/scriptlang
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"modpeg"
)

// The language: variables, arithmetic, comparisons, if/while, print.
// Split into lexical, expression, and statement modules like the bundled
// grammars.
var modules = map[string]string{
	"lang.lex": `
module lang.lex;

public void Spacing = ([ \t\r\n] / "#" [^\n]*)* ;
public Identifier = !Keyword v:IdentText Spacing @Var ;
text IdentText = [a-z_] [a-z0-9_]* ;
void Keyword = ("if" / "else" / "while" / "print" / "let") !IdentPart ;
void IdentPart = [a-z0-9_] ;
public Number = v:$([0-9]+) Spacing @Num ;
public void ASSIGN = "=" !"=" Spacing ;
public void SEMI   = ";" Spacing ;
public void LPAREN = "(" Spacing ;
public void RPAREN = ")" Spacing ;
public void LBRACE = "{" Spacing ;
public void RBRACE = "}" Spacing ;
public void PLUS   = "+" Spacing ;
public void MINUS  = "-" Spacing ;
public void STAR   = "*" Spacing ;
public void SLASH  = "/" Spacing ;
public void LT     = "<" Spacing ;
public void GT     = ">" Spacing ;
public void EQEQ   = "==" Spacing ;
public void KwIf    = "if" !IdentPart Spacing ;
public void KwElse  = "else" !IdentPart Spacing ;
public void KwWhile = "while" !IdentPart Spacing ;
public void KwPrint = "print" !IdentPart Spacing ;
public void KwLet   = "let" !IdentPart Spacing ;
public void EOF     = !. ;
`,
	"lang.expr": `
module lang.expr;

import lang.lex;

public Expression =
    <lt> l:Sum LT r:Sum @Lt
  / <gt> l:Sum GT r:Sum @Gt
  / <eq> l:Sum EQEQ r:Sum @Eq
  / <sum> Sum
  ;
Sum =
    <add> l:Sum PLUS r:Prod @Add
  / <sub> l:Sum MINUS r:Prod @Sub
  / <prod> Prod
  ;
Prod =
    <mul> l:Prod STAR r:Atom @Mul
  / <div> l:Prod SLASH r:Atom @Div
  / <atom> Atom
  ;
Atom =
    <num>   Number
  / <var>   Identifier
  / <paren> LPAREN e:Expression RPAREN
  ;
`,
	"lang.stmt": `
module lang.stmt;

import lang.lex;
import lang.expr;
option root = Program;

public Program = Spacing ss:Statement* EOF @Program ;

public Statement =
    <let>    KwLet n:Identifier ASSIGN e:Expression SEMI @Let
  / <assign> n:Identifier ASSIGN e:Expression SEMI @Assign
  / <print>  KwPrint e:Expression SEMI @Print
  / <if>     KwIf LPAREN c:Expression RPAREN t:Block f:ElseClause? @If
  / <while>  KwWhile LPAREN c:Expression RPAREN b:Block @While
  ;
ElseClause = KwElse b:Block @Else ;
public Block = LBRACE ss:Statement* RBRACE @Block ;
`,
	// The extension: a "repeat N { ... }" statement, added from outside.
	"lang.ext.repeat": `
module lang.ext.repeat;

modify lang.stmt;
import lang.lex;
import lang.expr;

Statement += <repeat> KwRepeat n:Expression b:Block @Repeat before <if> ;

void KwRepeat = "repeat" !RepIdentPart Spacing ;
void RepIdentPart = [a-z0-9_] ;
`,
	"lang.full": `
module lang.full;

import lang.stmt;
import lang.ext.repeat;
option root = lang.stmt.Program;
`,
}

const program = `
# fibonacci, with the repeat extension
let a = 0;
let b = 1;
repeat 10 {
    print a;
    let t = a + b;
    a = b;
    b = t;
}
if (a > 50) {
    print 999;
} else {
    print 111;
}
`

func main() {
	parser, err := modpeg.New("lang.full", modpeg.WithModules(modules))
	if err != nil {
		log.Fatal(err)
	}
	tree, err := parser.Parse("fib.lang", program)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("modules composed:", strings.Join(parser.Modules(), ", "))
	fmt.Println("\noutput:")
	interp := &interpreter{vars: map[string]int{}}
	interp.run(tree)
}

// interpreter walks the generic AST. Node names come from the @Ctor
// annotations above.
type interpreter struct {
	vars map[string]int
}

func (in *interpreter) run(v modpeg.Value) {
	n, ok := v.(*modpeg.Node)
	if !ok {
		return
	}
	switch n.Name {
	case "Program", "Block":
		if list, ok := n.Child(0).(modpeg.List); ok {
			for _, s := range list {
				in.run(s)
			}
		}
	case "Let", "Assign":
		name := modpeg.TextOf(n.Child(0))
		in.vars[name] = in.eval(n.Child(1))
	case "Print":
		fmt.Println(" ", in.eval(n.Child(0)))
	case "If":
		if in.eval(n.Child(0)) != 0 {
			in.run(n.Child(1))
		} else if els, ok := n.Child(2).(*modpeg.Node); ok {
			in.run(els.Child(0))
		}
	case "While":
		for in.eval(n.Child(0)) != 0 {
			in.run(n.Child(1))
		}
	case "Repeat": // from lang.ext.repeat
		times := in.eval(n.Child(0))
		for i := 0; i < times; i++ {
			in.run(n.Child(1))
		}
	}
}

func (in *interpreter) eval(v modpeg.Value) int {
	n, ok := v.(*modpeg.Node)
	if !ok {
		return 0
	}
	switch n.Name {
	case "Num":
		x, _ := strconv.Atoi(modpeg.TextOf(n))
		return x
	case "Var":
		return in.vars[modpeg.TextOf(n)]
	case "Add":
		return in.eval(n.Child(0)) + in.eval(n.Child(1))
	case "Sub":
		return in.eval(n.Child(0)) - in.eval(n.Child(1))
	case "Mul":
		return in.eval(n.Child(0)) * in.eval(n.Child(1))
	case "Div":
		return in.eval(n.Child(0)) / in.eval(n.Child(1))
	case "Lt":
		return boolToInt(in.eval(n.Child(0)) < in.eval(n.Child(1)))
	case "Gt":
		return boolToInt(in.eval(n.Child(0)) > in.eval(n.Child(1)))
	case "Eq":
		return boolToInt(in.eval(n.Child(0)) == in.eval(n.Child(1)))
	}
	return 0
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
