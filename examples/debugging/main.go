// Debugging: the grammar-development workflow — static checks, lint,
// syntax errors with positions and expectations, and the production-call
// trace.
//
// Run with:
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"strings"

	"modpeg"
	"modpeg/internal/vm"
)

// buggyGrammar contains the mistakes the toolchain is built to catch.
const buggyGrammar = `
module buggy;

public S = Expr ;

// Indirect left recursion: rejected (only the direct form transforms).
Expr = Term "+" Expr / Term ;
Term = Expr "*" [0-9] / [0-9] ;
`

// smellyGrammar is well-formed but deserves lint warnings.
const smellyGrammar = `
module smelly;

public S = Op [0-9] ;
Op = "<" / "<=" ;
Unused = "zzz" ;
`

func main() {
	// 1. Composition-time rejection of untransformable left recursion.
	fmt.Println("## static checks")
	_, err := modpeg.New("buggy", modpeg.WithModules(map[string]string{"buggy": buggyGrammar}))
	fmt.Println("buggy grammar rejected:")
	fmt.Println(indentLines(err.Error()))

	// 2. Lint findings on a well-formed grammar.
	fmt.Println("\n## lint")
	smelly, err := modpeg.New("smelly", modpeg.WithModules(map[string]string{"smelly": smellyGrammar}))
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range smelly.Lint() {
		fmt.Println("  lint:", w)
	}

	// 3. Syntax errors carry positions, the offending byte, and what the
	// parser was trying to match.
	fmt.Println("\n## syntax errors")
	calc, err := modpeg.New("calc.full")
	if err != nil {
		log.Fatal(err)
	}
	_, err = calc.Parse("broken.calc", "1 + (2 ** ) - 3")
	if pe, ok := err.(*vm.ParseError); ok {
		fmt.Println(indentLines(pe.Detail()))
	}

	// 4. The call trace shows the parse as it happens — entries, exits,
	// and memo hits.
	fmt.Println("\n## trace (first lines)")
	var trace strings.Builder
	if _, err := calc.ParseWithTrace("in", "1+2", &trace); err != nil {
		log.Fatal(err)
	}
	lines := strings.Split(trace.String(), "\n")
	if len(lines) > 14 {
		lines = lines[:14]
	}
	fmt.Println(indentLines(strings.Join(lines, "\n")))
}

func indentLines(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
